"""Canonical predicates: the normalize stage of the query planner.

Every query surface (SQL text, the fluent builder, raw conjunctions
from the evaluation harness) reduces its WHERE clause to one
:class:`CanonicalPredicate` — a per-attribute interval/set form in
canonical attribute order.  Normalization is interval algebra over the
dense domain indices:

* conditions on the same attribute **intersect** (``x >= 3 AND x <= 7``
  equals ``x BETWEEN 3 AND 7``),
* duplicate conjuncts dedupe for free (idempotent intersection),
* trivial conjuncts (a mask selecting the whole domain) drop out,
* an empty intersection — or a condition selecting no value at all —
  marks the predicate as a **contradiction**, which the planner answers
  with ``0`` in O(1) without touching any backend.

The canonical form is hashable: :attr:`CanonicalPredicate.key` is the
single cache key shared by the Explorer's result LRU, the SQL engine,
and shard pruning, so syntactic variants of one query hit one cache
entry.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.schema import Schema
from repro.errors import QueryError, ReproError
from repro.query.ast import Condition
from repro.query.linear import condition_mask
from repro.stats.predicates import (
    Conjunction,
    Predicate,
    RangePredicate,
    SetPredicate,
)

#: Key of every contradictory predicate — all of them are equivalent
#: (they select the empty set), so they share one canonical key.
EMPTY_KEY = ("empty",)


def _predicate_key(predicate: Predicate):
    """Hashable canonical form of one per-attribute predicate."""
    if isinstance(predicate, RangePredicate):
        return ("range", predicate.low, predicate.high)
    if isinstance(predicate, SetPredicate):
        return ("set", tuple(sorted(predicate.indices)))
    raise TypeError(f"cannot canonicalize {type(predicate).__name__}")


class CanonicalPredicate:
    """Normal form of a conjunctive WHERE clause over one schema.

    ``entries`` holds ``(position, predicate)`` pairs in ascending
    attribute position — the canonical attribute order — with only
    non-trivial predicates present.  A contradiction has no entries and
    ``is_empty`` set; the trivial predicate (matches everything) has no
    entries and ``is_empty`` unset.
    """

    __slots__ = ("schema", "entries", "is_empty", "empty_reason", "key",
                 "_conjunction")

    def __init__(
        self,
        schema: Schema,
        entries: Sequence[tuple[int, Predicate]] = (),
        *,
        is_empty: bool = False,
        empty_reason: str | None = None,
    ):
        self.schema = schema
        self.entries = tuple(sorted(entries, key=lambda entry: entry[0]))
        self.is_empty = bool(is_empty)
        self.empty_reason = empty_reason
        if self.is_empty:
            self.key = EMPTY_KEY
        else:
            self.key = tuple(
                (pos, _predicate_key(predicate))
                for pos, predicate in self.entries
            )
        self._conjunction = None

    # -- algebraic views -------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        """Matches every tuple (no constraints, not a contradiction)."""
        return not self.entries and not self.is_empty

    def predicate_at(self, pos: int) -> Predicate | None:
        """The canonical predicate on ``pos``, or None if unconstrained."""
        for position, predicate in self.entries:
            if position == pos:
                return predicate
        return None

    def to_conjunction(self) -> Conjunction:
        """The executable :class:`Conjunction` (memoized).

        Contradictions have no conjunction — the planner must
        short-circuit them before execution.
        """
        if self.is_empty:
            raise QueryError(
                "a contradictory predicate has no executable conjunction; "
                f"short-circuit it ({self.empty_reason or 'empty selection'})"
            )
        if self._conjunction is None:
            names = self.schema.attribute_names
            self._conjunction = Conjunction(
                self.schema,
                {names[pos]: predicate for pos, predicate in self.entries},
            )
        return self._conjunction

    def describe(self) -> str:
        """One-line human form used by ``explain()``."""
        if self.is_empty:
            reason = self.empty_reason or "empty selection"
            return f"contradiction ({reason})"
        if not self.entries:
            return "true (no constraints)"
        names = self.schema.attribute_names
        return " AND ".join(
            f"{names[pos]} {predicate!r}" for pos, predicate in self.entries
        )

    def __eq__(self, other):
        if not isinstance(other, CanonicalPredicate):
            return NotImplemented
        return self.schema == other.schema and self.key == other.key

    def __hash__(self):
        return hash((self.schema, self.key))

    def __repr__(self):
        return f"CanonicalPredicate({self.describe()})"


def _entry_from_mask(mask: np.ndarray) -> Predicate | None:
    """Tightest predicate for a value mask; None when trivial."""
    hits = np.flatnonzero(mask)
    if hits.size == mask.size:
        return None
    if hits[-1] - hits[0] + 1 == hits.size:
        return RangePredicate(int(hits[0]), int(hits[-1]))
    return SetPredicate(hits.tolist())


def _from_masks(
    schema: Schema, masks: dict[int, np.ndarray]
) -> CanonicalPredicate:
    entries = []
    for pos, mask in masks.items():
        if not mask.any():
            name = schema.attribute_names[pos]
            return CanonicalPredicate(
                schema,
                is_empty=True,
                empty_reason=f"no value of {name!r} satisfies the conditions",
            )
        predicate = _entry_from_mask(mask)
        if predicate is not None:
            entries.append((pos, predicate))
    return CanonicalPredicate(schema, entries)


def canonicalize_conditions(
    schema: Schema, conditions: Sequence[Condition]
) -> CanonicalPredicate:
    """Normalize parsed WHERE conditions.

    Labels resolve to dense-index masks once, masks on the same
    attribute intersect, and unsatisfiable conditions (values outside
    the active domain, reversed ranges after clamping, contradictory
    bounds) collapse to the canonical contradiction instead of raising.
    Unknown attributes and type errors still raise.
    """
    masks: dict[int, np.ndarray] = {}
    for condition in conditions:
        pos = schema.position(condition.attribute)
        mask = condition_mask(schema.domain(pos), condition, strict=False)
        if pos in masks:
            masks[pos] = masks[pos] & mask
        else:
            masks[pos] = mask
    return _from_masks(schema, masks)


def canonicalize_conjunction(predicate: Conjunction | None, schema=None):
    """Normalize an already-compiled conjunction (the harness's and the
    experiment drivers' native currency).

    Re-deriving the canonical form from the masks collapses equivalent
    spellings — a ``SetPredicate`` over contiguous indices and the
    matching ``RangePredicate`` share one key — so predicate-level
    callers join the same caches as the SQL surfaces.
    """
    if predicate is None:
        if schema is None:
            raise ReproError("need a schema to canonicalize None")
        return CanonicalPredicate(schema)
    if predicate.is_trivial():
        return CanonicalPredicate(predicate.schema)
    return _from_masks(predicate.schema, predicate.attribute_masks())
