"""Backend routing: the route stage of the query planner.

A small cost/capability model over the :class:`~repro.api.backend.Backend`
contract decides how a normalized query executes:

* **none** — the predicate is a contradiction; nothing runs;
* **exact** — a ground-truth backend scans rows (cost = rows scanned);
* **sharded** — a sharded summary fans out over its live shards;
  pruning is decided here, once, from the canonical predicate's
  interval on the shard attribute (cost = polynomial terms across the
  live shards only);
* **summary** — one MaxEnt model evaluates its compressed polynomial
  (cost = term count, the unit of Sec 4.2's evaluation);
* **backend** — anything else that satisfies the count contract.

Routing also performs the capability checks (``supports_sum`` for
SUM/AVG) and decides whether a scalar count may join a vectorized
``estimate_many`` batch.
"""

from __future__ import annotations

from repro.errors import QueryError


class Route:
    """One routing decision, carried by the plan for ``explain()``.

    ``detail`` resolves lazily: explain-only bookkeeping (live/pruned
    shard indices, per-shard term costs) is computed on first access,
    never on the execute path — shard pruning for execution happens
    exactly once, inside :meth:`ShardedSummary.shard_conjunctions`.
    """

    __slots__ = ("target", "batched", "cost", "cost_unit", "_detail", "_thunk")

    def __init__(
        self,
        target: str,
        batched: bool = False,
        cost: float = 0.0,
        cost_unit: str = "",
        detail: dict | None = None,
        lazy_detail=None,
    ):
        #: "none" | "exact" | "summary" | "sharded" | "backend"
        self.target = target
        #: May a scalar count of this plan join a vectorized batch pass?
        self.batched = batched
        #: Abstract cost: rows scanned (exact) or polynomial terms
        #: (models).  Sharded routes report cost via ``detail`` (lazy).
        self.cost = cost
        #: Unit of ``cost`` ("rows" / "terms" / "").
        self.cost_unit = cost_unit
        self._detail = dict(detail or {})
        self._thunk = lazy_detail

    @property
    def detail(self) -> dict:
        """Routing details (backend name, live/pruned shards, ...)."""
        if self._thunk is not None:
            self._detail.update(self._thunk())
            self._thunk = None
        return self._detail

    def describe(self) -> str:
        if self.target == "none":
            return "none (contradiction answered in O(1))"
        detail = self.detail
        cost = detail.get("cost", self.cost)
        cost_unit = detail.get("cost_unit", self.cost_unit)
        parts = [self.target]
        if detail.get("backend"):
            parts[0] = f"{self.target} {detail['backend']!r}"
        if cost:
            parts.append(f"cost≈{cost:g} {cost_unit}".rstrip())
        if self.target == "sharded":
            live = detail.get("live_shards", ())
            pruned = detail.get("pruned_shards", ())
            parts.append(
                f"fan-out over {len(live)} live shard(s), "
                f"{len(pruned)} pruned"
            )
        if self.batched:
            parts.append("batchable")
        return ", ".join(parts)

    def __repr__(self):
        return f"Route({self.describe()})"


def _check_capabilities(backend, query) -> None:
    """Reject queries the backend cannot answer, with a clear error."""
    if query is not None and query.aggregate != "count":
        if (
            getattr(backend, "supports_sum", None) is False
            or getattr(backend, "sum_values", None) is None
        ):
            raise QueryError(
                f"backend {backend!r} does not support SUM/AVG"
            )


def route_query(backend, query, predicate) -> Route:
    """Pick the execution target for one normalized query.

    ``query`` is the validated :class:`~repro.query.ast.CountQuery`
    (None for predicate-level scalar counts), ``predicate`` the
    :class:`~repro.plan.canonical.CanonicalPredicate`.
    """
    if predicate.is_empty:
        return Route("none")
    _check_capabilities(backend, query)
    scalar_count = query is None or (
        query.aggregate == "count" and not query.is_grouped
    )
    batched = scalar_count and (
        getattr(backend, "estimate_many", None) is not None
        or getattr(backend, "count_many", None) is not None
    )
    name = getattr(backend, "name", type(backend).__name__)
    summary = getattr(backend, "summary", None)
    if summary is not None and hasattr(summary, "shards"):
        conjunction = (
            None if predicate.is_trivial else predicate.to_conjunction()
        )

        def sharded_detail():
            live = summary.live_shards(conjunction)
            live_set = set(live)
            return {
                "live_shards": tuple(live),
                "pruned_shards": tuple(
                    index
                    for index in range(summary.num_shards)
                    if index not in live_set
                ),
                "cost": float(
                    sum(
                        summary.shards[index].polynomial.num_terms
                        for index in live
                    )
                ),
                "cost_unit": "terms",
            }

        return Route(
            "sharded",
            batched=batched,
            detail={"backend": name},
            lazy_detail=sharded_detail,
        )
    if summary is not None and hasattr(summary, "polynomial"):
        return Route(
            "summary",
            batched=batched,
            cost=float(summary.polynomial.num_terms),
            cost_unit="terms",
            detail={"backend": name},
        )
    if getattr(backend, "is_exact", False):
        relation = getattr(backend, "relation", None)
        rows = getattr(relation, "num_rows", 0)
        return Route(
            "exact",
            batched=batched,
            cost=float(rows),
            cost_unit="rows",
            detail={"backend": name},
        )
    rows = getattr(backend, "num_rows", 0)
    return Route(
        "backend",
        batched=batched,
        cost=float(rows),
        cost_unit="rows" if rows else "",
        detail={"backend": name},
    )
