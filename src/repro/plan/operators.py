"""Physical operators: the execute stage of the query planner.

One small set of operators runs every query of every surface — the SQL
engine, the Explorer (``run``/``run_many``/``sql``), the CLI, and the
evaluation harness all hand their plans to these instead of keeping
per-surface dispatch code:

* :class:`EmptyOp` — contradiction short-circuit: answers without
  touching any backend (``COUNT``/``SUM`` → 0, ``GROUP BY`` → no rows,
  ``AVG`` → a clean error, since 0/0 is undefined);
* :class:`ScalarCountOp` — one ``COUNT(*)``, carrying the model's
  error bounds when the backend exposes estimates;
* :class:`GroupByOp` — grouped counts with model-side grouping,
  plus ORDER BY/LIMIT post-processing;
* :class:`AggregateOp` — ``SUM``/``AVG`` as weighted linear queries
  (AVG is the ratio estimator SUM/COUNT);
* :func:`execute_batch` — the shared batched executor: groups the
  compatible scalar-count plans of a batch into one vectorized
  ``estimate_many``/``count_many`` backend pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import QueryError
from repro.query.results import GroupRow, QueryResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plan.planner import QueryPlan


class Operator:
    """One physical operator; ``run`` executes against a backend."""

    name = "operator"

    def run(self, backend, plan: "QueryPlan") -> QueryResult:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def __repr__(self):
        return f"<{self.describe()}>"


class EmptyOp(Operator):
    """O(1) answer for a contradictory predicate — no backend call."""

    name = "Empty"

    def run(self, backend, plan: "QueryPlan") -> QueryResult:
        query = plan.query
        if query.aggregate == "avg":
            raise QueryError(
                "AVG undefined: the predicate is a contradiction "
                "(no rows can match)"
            )
        if query.is_grouped:
            return QueryResult(query, None, [])
        return QueryResult(query, 0.0, None)

    def describe(self) -> str:
        return "Empty (contradiction; no backend touched)"


class ScalarCountOp(Operator):
    """``SELECT COUNT(*)`` under one conjunction."""

    name = "ScalarCount"

    def run(self, backend, plan: "QueryPlan") -> QueryResult:
        conjunction = plan.conjunction()
        estimator = getattr(backend, "estimate", None)
        if estimator is not None:
            estimate = estimator(conjunction)
            value_of = getattr(backend, "value_of", None)
            scalar = (
                float(value_of(estimate))
                if value_of is not None
                else float(backend.count(conjunction))
            )
            return QueryResult(plan.query, scalar, None, estimate)
        return QueryResult(plan.query, float(backend.count(conjunction)), None)


class GroupByOp(Operator):
    """Grouped counts (model-side grouping on summary backends), then
    ORDER BY cnt / LIMIT post-processing."""

    name = "GroupBy"

    def run(self, backend, plan: "QueryPlan") -> QueryResult:
        query = plan.query
        predicate = plan.conjunction_or_none()
        counts = backend.group_counts(query.group_by, predicate)
        rows = [GroupRow(labels, count) for labels, count in counts.items()]
        if query.order == "desc":
            rows.sort(key=lambda row: (-row.count, str(row.labels)))
        elif query.order == "asc":
            rows.sort(key=lambda row: (row.count, str(row.labels)))
        else:
            rows.sort(key=lambda row: str(row.labels))
        if query.limit is not None:
            rows = rows[: query.limit]
        return QueryResult(query, None, rows)

    def describe(self) -> str:
        return "GroupBy (model-side grouping, order/limit)"


class AggregateOp(Operator):
    """``SUM``/``AVG`` over a numeric attribute as a weighted linear
    query; AVG is the ratio estimator SUM/COUNT."""

    name = "Aggregate"

    def run(self, backend, plan: "QueryPlan") -> QueryResult:
        from repro.query.linear import numeric_weights

        query = plan.query
        schema = backend.schema
        pos = schema.position(query.aggregate_attr)
        weights = numeric_weights(schema.domain(pos))
        predicate = plan.conjunction_or_none()
        total = float(backend.sum_values(pos, weights, predicate))
        if query.aggregate == "sum":
            return QueryResult(query, total, None)
        count = float(backend.count(plan.conjunction()))
        if count <= 0:
            raise QueryError("AVG undefined: no rows match the predicate")
        return QueryResult(query, total / count, None)

    def describe(self) -> str:
        return "Aggregate (weighted linear query)"


def execute_batch(
    backend, plans: Sequence["QueryPlan"]
) -> list[QueryResult]:
    """Execute a batch of plans, vectorizing where possible.

    All batchable scalar ``COUNT(*)`` plans run through one vectorized
    backend pass — ``estimate_many`` when the backend exposes model
    estimates (one polynomial evaluation for the whole batch), else
    ``count_many``, else a plain loop.  Contradictions, grouped
    queries, and SUM/AVG run singly.  Results come back in input order.
    """
    results: list[QueryResult | None] = [None] * len(plans)
    batchable: list[int] = []
    for index, plan in enumerate(plans):
        if plan.route.batched and isinstance(plan.operator, ScalarCountOp):
            batchable.append(index)
        else:
            results[index] = plan.operator.run(backend, plan)
    if batchable:
        conjunctions = [plans[index].conjunction() for index in batchable]
        estimator = getattr(backend, "estimate_many", None)
        value_of = getattr(backend, "value_of", None)
        if estimator is not None and value_of is not None:
            # One vectorized inference pass yields both the scalar
            # counts and the error bounds.
            estimates = estimator(conjunctions)
            counts = [value_of(estimate) for estimate in estimates]
        else:
            estimates = None
            counter = getattr(backend, "count_many", None)
            if counter is not None:
                counts = counter(conjunctions)
            else:
                counts = [backend.count(c) for c in conjunctions]
        for offset, index in enumerate(batchable):
            results[index] = QueryResult(
                plans[index].query,
                float(counts[offset]),
                None,
                estimates[offset] if estimates is not None else None,
            )
    return results  # type: ignore[return-value]


#: Shared operator instances — operators are stateless, so every plan
#: of a kind carries the same object.
EMPTY = EmptyOp()
SCALAR_COUNT = ScalarCountOp()
GROUP_BY = GroupByOp()
AGGREGATE = AggregateOp()


def pick_operator(query, predicate) -> Operator:
    """Choose the physical operator for a validated query."""
    if predicate.is_empty:
        return EMPTY
    if query.aggregate != "count":
        return AGGREGATE
    if query.is_grouped:
        return GROUP_BY
    return SCALAR_COUNT
