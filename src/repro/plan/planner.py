"""The query planner: one planning layer under every query surface.

EntropyDB's core claim (Sec 4.2) is that a counting query is one cheap
polynomial evaluation.  Everything around that evaluation — resolving
labels to index masks, merging intervals, deciding which backend (or
which shards) to touch, batching compatible queries — is planning, and
it lives here exactly once.  The SQL engine, the Explorer, the CLI, and
the evaluation harness all build :class:`QueryPlan` objects through a
:class:`Planner` and run them through the shared operators in
:mod:`repro.plan.operators`.

A plan has three stages, visible via :meth:`QueryPlan.explain`:

1. **normalize** — interval algebra over the parsed conditions produces
   a hashable :class:`~repro.plan.canonical.CanonicalPredicate`
   (contradictions short-circuit to ``0`` here);
2. **route** — a cost/capability model picks the execution target and
   decides batching and shard pruning
   (:func:`~repro.plan.router.route_query`);
3. **execute** — one of the shared physical operators runs against the
   backend.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import QueryError
from repro.plan.canonical import (
    CanonicalPredicate,
    canonicalize_conditions,
    canonicalize_conjunction,
)
from repro.plan.operators import execute_batch, pick_operator
from repro.plan.router import Route, route_query
from repro.query.ast import CountQuery
from repro.query.parser import parse_query
from repro.query.results import QueryResult
from repro.stats.predicates import Conjunction


def make_cache_key(query: CountQuery, predicate: CanonicalPredicate) -> tuple:
    """Semantic result-cache key of a (query, canonical predicate) pair.

    Hashable, and equal for syntactic variants of one query (``BETWEEN
    3 AND 7`` vs ``x >= 3 AND x <= 7``, reordered conjuncts).  Exposed
    separately from :class:`QueryPlan` so caches can be consulted after
    the normalize stage alone — a cache hit never pays for routing.
    """
    return (
        query.table.lower(),
        query.aggregate,
        query.aggregate_attr,
        predicate.key,
        tuple(query.group_by),
        query.order,
        query.limit,
    )


class QueryPlan:
    """One planned query: canonical predicate, route, operator.

    ``cache_key`` is hashable and *semantic* — two syntactic variants of
    one query (``BETWEEN 3 AND 7`` vs ``x >= 3 AND x <= 7``, reordered
    conjuncts) plan to equal keys, so result caches collapse them.
    """

    __slots__ = ("query", "predicate", "route", "operator", "cache_key")

    def __init__(
        self,
        query: CountQuery,
        predicate: CanonicalPredicate,
        route: Route,
        operator,
    ):
        self.query = query
        self.predicate = predicate
        self.route = route
        self.operator = operator
        self.cache_key = make_cache_key(query, predicate)

    # -- predicate views --------------------------------------------------
    def conjunction(self) -> Conjunction:
        """Executable conjunction (trivial when unconstrained)."""
        if self.predicate.is_trivial:
            return Conjunction(self.predicate.schema, {})
        return self.predicate.to_conjunction()

    def conjunction_or_none(self) -> Conjunction | None:
        """Executable conjunction, or None when unconstrained (the
        form ``group_counts``/``sum_values`` backends expect)."""
        if self.predicate.is_trivial:
            return None
        return self.predicate.to_conjunction()

    # -- introspection ----------------------------------------------------
    def explain(self) -> str:
        """The three planning stages, one line each."""
        return (
            f"plan for: {self.query!r}\n"
            f"  normalize: {self.predicate.describe()}\n"
            f"  route:     {self.route.describe()}\n"
            f"  execute:   {self.operator.describe()}"
        )

    def __repr__(self):
        return (
            f"QueryPlan({self.operator.name} via {self.route.target}, "
            f"{self.predicate.describe()})"
        )


class Planner:
    """Plans and executes queries against one backend."""

    def __init__(self, backend, table_name: str = "R"):
        self.backend = backend
        self.table_name = table_name

    # -- normalize --------------------------------------------------------
    def parse(self, query: "CountQuery | str") -> CountQuery:
        """Parse SQL text (if needed) and validate it for this backend."""
        if isinstance(query, str):
            query = parse_query(query)
        if query.table.lower() != self.table_name.lower():
            raise QueryError(
                f"unknown table {query.table!r}; this engine serves "
                f"{self.table_name!r}"
            )
        for attr in query.group_by:
            self.backend.schema.position(attr)  # raises on unknown attributes
        return query

    def normalize(self, query: CountQuery) -> CanonicalPredicate:
        """Canonicalize a validated query's WHERE clause."""
        return canonicalize_conditions(self.backend.schema, query.conditions)

    # -- plan -------------------------------------------------------------
    def plan(
        self,
        query: "CountQuery | str",
        predicate: CanonicalPredicate | None = None,
    ) -> QueryPlan:
        """Full planning pass: parse/validate → normalize → route.

        Callers holding a cached :class:`CanonicalPredicate` (the
        Explorer's predicate LRU) pass it to skip re-normalization.
        """
        query = self.parse(query)
        if predicate is None:
            predicate = self.normalize(query)
        route = route_query(self.backend, query, predicate)
        return QueryPlan(query, predicate, route, pick_operator(query, predicate))

    def plan_conjunction(self, conjunction: Conjunction | None) -> QueryPlan:
        """Plan a predicate-level scalar count (the harness's and the
        experiment drivers' entry point)."""
        predicate = canonicalize_conjunction(
            conjunction, schema=self.backend.schema
        )
        query = CountQuery(self.table_name)
        route = route_query(self.backend, query, predicate)
        return QueryPlan(query, predicate, route, pick_operator(query, predicate))

    # -- execute ----------------------------------------------------------
    def execute(self, plan: QueryPlan) -> QueryResult:
        """Run one plan through its physical operator."""
        return plan.operator.run(self.backend, plan)

    def execute_many(self, plans: Sequence[QueryPlan]) -> list[QueryResult]:
        """Run a batch of plans through the shared batched executor."""
        return execute_batch(self.backend, list(plans))

    def explain(self, query: "CountQuery | str") -> str:
        """Shortcut: plan and render the three stages."""
        return self.plan(query).explain()

    def __repr__(self):
        return f"Planner({self.backend!r}, table={self.table_name!r})"
