"""The query planning layer: normalize → route → execute.

One planner sits under every query surface (SQL engine, Explorer, CLI,
evaluation harness), so semantically equal queries share one canonical
cache key, contradictions answer ``0`` without touching a backend,
shard pruning is decided once per query, and compatible scalar counts
batch into single vectorized backend passes.

* :class:`~repro.plan.canonical.CanonicalPredicate` — hashable normal
  form of a conjunctive WHERE clause (interval algebra, contradiction
  detection);
* :class:`~repro.plan.router.Route` — the cost/capability routing
  decision;
* :class:`~repro.plan.planner.QueryPlan` / :class:`~repro.plan.planner.Planner`
  — the per-backend planning façade with ``explain()``.
"""

from repro.plan.canonical import (
    CanonicalPredicate,
    canonicalize_conditions,
    canonicalize_conjunction,
)
from repro.plan.operators import execute_batch, pick_operator
from repro.plan.planner import Planner, QueryPlan, make_cache_key
from repro.plan.router import Route, route_query

__all__ = [
    "CanonicalPredicate",
    "Planner",
    "QueryPlan",
    "Route",
    "canonicalize_conditions",
    "canonicalize_conjunction",
    "execute_batch",
    "make_cache_key",
    "pick_operator",
    "route_query",
]
