"""Render live server tables from ``metrics`` op snapshots.

Pure functions over the JSON-safe snapshot dict the ``metrics`` op
returns — ``repro top`` calls :func:`render_top` in a loop with the
previous snapshot to derive rates; tests call it with two canned
snapshots and assert on the text.
"""

from __future__ import annotations

from repro.obs.metrics import histogram_quantile, histogram_stats, sample_value

__all__ = ["render_top"]

#: The serving stages, in pipeline order (also the span names).
STAGES = (
    "parse",
    "canonicalize",
    "route",
    "cache_lookup",
    "coalesce_wait",
    "evaluate",
    "encode",
)


def _ops(snapshot: dict) -> list[str]:
    family = snapshot.get("repro_requests_total", {"samples": []})
    return sorted({s["labels"].get("op", "") for s in family["samples"]})


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.3f}"


def render_top(
    snapshot: dict,
    previous: dict | None = None,
    interval_s: float | None = None,
) -> str:
    """One ``repro top`` screen: per-op table plus component gauges."""
    lines = []
    total = sample_value(snapshot, "repro_requests_total")
    errors = sample_value(snapshot, "repro_errors_total")
    header = f"requests {int(total)}  errors {int(errors)}"
    if previous is not None and interval_s and interval_s > 0:
        delta = total - sample_value(previous, "repro_requests_total")
        header += f"  qps {delta / interval_s:8.1f}"
    lines.append(header)
    lines.append("")
    lines.append(
        f"{'op':<12} {'count':>8} {'errors':>7} {'p50 ms':>9} {'p95 ms':>9}"
    )
    for op in _ops(snapshot):
        labels = {"op": op}
        count = sample_value(snapshot, "repro_requests_total", labels)
        op_errors = sample_value(snapshot, "repro_errors_total", labels)
        p50 = histogram_quantile(snapshot, "repro_request_seconds", 0.5, labels)
        p95 = histogram_quantile(snapshot, "repro_request_seconds", 0.95, labels)
        lines.append(
            f"{op:<12} {int(count):>8} {int(op_errors):>7} "
            f"{_fmt_ms(p50):>9} {_fmt_ms(p95):>9}"
        )
    lines.append("")
    lines.append(f"{'stage':<14} {'count':>8} {'p50 ms':>9} {'mean ms':>9}")
    for stage in STAGES:
        labels = {"stage": stage}
        total_s, count, _ = histogram_stats(
            snapshot, "repro_stage_seconds", labels
        )
        if not count:
            continue
        p50 = histogram_quantile(
            snapshot, "repro_stage_seconds", 0.5, labels
        )
        lines.append(
            f"{stage:<14} {int(count):>8} {_fmt_ms(p50):>9} "
            f"{_fmt_ms(total_s / count):>9}"
        )
    hits = sample_value(snapshot, "repro_cache_hits_total")
    misses = sample_value(snapshot, "repro_cache_misses_total")
    lookups = hits + misses
    hit_rate = hits / lookups if lookups else 0.0
    lines.append("")
    lines.append(
        f"cache hit rate {hit_rate:6.1%}  "
        f"size {int(sample_value(snapshot, 'repro_cache_size'))}  "
        f"admission depth {int(sample_value(snapshot, 'repro_admission_depth'))}"
        f"  coalesced {int(sample_value(snapshot, 'repro_coalescer_coalesced_total'))}"
        f"  slow {int(sample_value(snapshot, 'repro_slow_queries_total'))}"
    )
    return "\n".join(lines)
