"""Observability: metrics registry, request tracing, slow-query log.

The serving tier's window into itself (see ``docs/observability.md``):

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  latency histograms behind one lock, snapshot-consistent, rendered
  in Prometheus text format;
* :class:`Trace` / :func:`span` — per-request timed spans propagated
  through the planner and both wire protocols via contextvars, kept
  in a bounded :class:`TraceRing`;
* :class:`SlowQueryLog` — JSONL log of over-threshold requests, each
  entry embedding the trace and the plan's ``explain()`` output.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
    histogram_stats,
    parse_prometheus,
    quantile_from_buckets,
    render_prometheus,
    sample_value,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.top import render_top
from repro.obs.trace import (
    Span,
    Trace,
    TraceRing,
    activate,
    current_trace,
    span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "SlowQueryLog",
    "Span",
    "Trace",
    "TraceRing",
    "activate",
    "current_trace",
    "histogram_quantile",
    "histogram_stats",
    "parse_prometheus",
    "quantile_from_buckets",
    "render_prometheus",
    "render_top",
    "sample_value",
    "span",
]
