"""The slow-query log: every request over a threshold, with evidence.

Each entry embeds the request's full trace (per-stage timings, the
shared evaluate span id) and the planner's ``explain()`` rendering, so
a slow query in production is diagnosable from the log alone — which
stage ate the time, and what plan it was running.

Entries always land in a bounded in-memory ring (served by the
``metrics`` op); with a ``path`` they are also appended as JSON lines,
one object per line, crash-tolerant (each write is open/append/close).
The log is disabled until a threshold is configured
(``--slow-query-ms``), so the default serving path never formats an
entry.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    def __init__(
        self,
        threshold_ms: float | None = None,
        path: str | None = None,
        capacity: int = 128,
    ):
        self.threshold_ms = threshold_ms
        self.path = path
        self._ring: deque = deque(maxlen=max(int(capacity), 1))
        self._lock = threading.Lock()
        self.recorded = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def maybe_record(
        self,
        *,
        duration_s: float,
        sql: str | None = None,
        trace=None,
        explain: str | None = None,
        **extra,
    ) -> bool:
        """Record when over threshold; returns whether it recorded."""
        if self.threshold_ms is None:
            return False
        duration_ms = duration_s * 1e3
        if duration_ms < self.threshold_ms:
            return False
        entry = {
            "ts": round(time.time(), 6),
            "duration_ms": round(duration_ms, 4),
            "threshold_ms": self.threshold_ms,
            "sql": sql,
            "explain": explain,
            "trace": trace.to_dict() if trace is not None else None,
        }
        entry.update(extra)
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self._ring.append(entry)
            self.recorded += 1
            if self.path is not None:
                try:
                    with open(self.path, "a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
                except OSError:
                    # A full or vanished disk must not fail the query
                    # that happened to be slow; the ring still has it.
                    self.path = None
        return True

    def entries(self) -> list[dict]:
        with self._lock:
            return list(self._ring)

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "threshold_ms": self.threshold_ms,
                "recorded": self.recorded,
                "ring": len(self._ring),
                "path": self.path,
            }
