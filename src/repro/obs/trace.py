"""Request tracing: timed spans, contextvar propagation, trace ring.

A :class:`Trace` is one request's timeline — an ordered list of named
:class:`Span`\\ s covering the serving pipeline (``parse`` →
``canonicalize`` → ``route`` → ``cache_lookup`` → ``coalesce_wait`` →
``evaluate`` → ``encode``).  The server activates the trace in a
:mod:`contextvars` context variable for the duration of the request
task, so layers that never see the request dict — the
:class:`~repro.plan.planner.Planner` and
:class:`~repro.api.explorer.Explorer` — annotate it with
:func:`span` without any plumbing::

    with span("parse"):
        query = parse_query(sql)

:func:`span` is a no-op returning a shared null context when no trace
is active, so library code pays one ``ContextVar.get`` when tracing is
off (the ≤5% overhead budget the serve benchmark gates).

Coalescing makes one span *shared*: N same-key requests waiting on one
flush each keep their own trace (distinct ids, their own
``coalesce_wait`` span) but attach the **same** ``evaluate`` span
object — same ``span_id``, same duration — because only one evaluation
happened.  That is the provenance story: a trace tells you which
execution answered you, not just how long you waited.
"""

from __future__ import annotations

import contextlib
import itertools
import random
import threading
import time
from collections import deque
from contextvars import ContextVar

__all__ = [
    "Span",
    "Trace",
    "TraceRing",
    "activate",
    "current_trace",
    "span",
]

#: Trace ids are 63-bit so they survive the signed i64 of the binary
#: frame header; the low 31 bits double as the header's trace hint.
TRACE_ID_BITS = 63

_ids = random.Random()
_span_ids = itertools.count(1)
_CURRENT: ContextVar["Trace | None"] = ContextVar("repro_trace", default=None)
_NOOP = contextlib.nullcontext()


def new_trace_id() -> int:
    return _ids.getrandbits(TRACE_ID_BITS) or 1


class Span:
    """One timed step; ``duration_s`` is filled by :meth:`finish`."""

    __slots__ = ("name", "span_id", "started_s", "duration_s", "meta", "_t0")

    def __init__(self, name: str, **meta):
        self.name = name
        self.span_id = next(_span_ids)
        self.meta = meta or None
        self.started_s = time.time()
        self._t0 = time.perf_counter()
        self.duration_s = 0.0

    def finish(self) -> "Span":
        self.duration_s = time.perf_counter() - self._t0
        return self

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "duration_ms": round(self.duration_s * 1e3, 4),
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        return out


class Trace:
    """One request's spans, id, and wall-clock envelope."""

    __slots__ = ("trace_id", "op", "session", "started_s", "_t0", "spans",
                 "status", "cached")

    def __init__(self, op: str = "query", session: str | None = None,
                 trace_id: int | None = None):
        self.trace_id = trace_id or new_trace_id()
        self.op = op
        self.session = session
        self.started_s = time.time()
        self._t0 = time.perf_counter()
        self.spans: list[Span] = []
        self.status: int | None = None
        self.cached: bool | None = None

    @property
    def hex_id(self) -> str:
        return format(self.trace_id, "016x")

    @property
    def hint(self) -> int:
        """The 31-bit id hint that rides the binary frame header."""
        return self.trace_id & 0x7FFFFFFF

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self._t0

    @contextlib.contextmanager
    def span(self, name: str, **meta):
        entry = Span(name, **meta)
        try:
            yield entry
        finally:
            entry.finish()
            self.spans.append(entry)

    def begin(self, name: str, **meta) -> Span:
        """Open a span the caller finishes with :meth:`attach`."""
        return Span(name, **meta)

    def attach(self, entry: Span | None) -> None:
        """Append a finished span — possibly one *shared* with other
        traces (the coalesced-evaluate case)."""
        if entry is not None:
            self.spans.append(entry)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.hex_id,
            "op": self.op,
            "session": self.session,
            "started_s": round(self.started_s, 6),
            "elapsed_ms": round(self.elapsed_s * 1e3, 4),
            "status": self.status,
            "cached": self.cached,
            "spans": [entry.to_dict() for entry in list(self.spans)],
        }


def current_trace() -> Trace | None:
    return _CURRENT.get()


@contextlib.contextmanager
def activate(trace: Trace):
    """Make ``trace`` the ambient trace of this task/thread context."""
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)


def span(name: str, **meta):
    """Span on the ambient trace; shared no-op when tracing is off."""
    trace = _CURRENT.get()
    if trace is None:
        return _NOOP
    return trace.span(name, **meta)


class TraceRing:
    """Bounded ring of recently finished traces (newest last)."""

    def __init__(self, capacity: int = 256):
        self._ring: deque = deque(maxlen=max(int(capacity), 0))
        self._lock = threading.Lock()

    def record(self, trace: Trace) -> None:
        if self._ring.maxlen == 0:
            return
        with self._lock:
            self._ring.append(trace)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def traces(self) -> list[Trace]:
        with self._lock:
            return list(self._ring)

    def snapshot(self) -> list[dict]:
        return [trace.to_dict() for trace in self.traces()]
