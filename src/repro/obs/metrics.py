"""The metrics registry: counters, gauges, and latency histograms.

One :class:`MetricsRegistry` per server (or client) owns every metric
family behind a single lock, which buys the two properties the serve
layer needs:

* **snapshot consistency** — :meth:`MetricsRegistry.snapshot` reads
  every counter in one pass under the one lock, so a ``stats`` call
  can never observe ``hits`` from before a request and ``misses``
  from after it (the torn-read class of bug the PR 6 lock audit
  flagged);
* **one exposition point** — :meth:`MetricsRegistry.render` emits the
  whole registry in Prometheus text format, and
  :func:`parse_prometheus` reads it back (the round-trip the
  ``obs-smoke`` CI job asserts).

Families are created idempotently: registering the same name with the
same type and label names returns the existing family, so components
wired to a shared registry never fight over who declares a metric.
Label *values* create child series on demand, Prometheus-style::

    registry = MetricsRegistry()
    requests = registry.counter("repro_requests_total", "Requests.", ("op",))
    requests.labels(op="query").inc()

Unlabelled families accept ``inc``/``set``/``observe`` directly.
"""

from __future__ import annotations

import math
import re
import threading

from repro.errors import ObservabilityError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "parse_prometheus",
    "quantile_from_buckets",
    "render_prometheus",
    "sample_value",
]

#: Fixed latency buckets in seconds: 50 µs to 5 s, roughly log-spaced.
#: Fixed (not adaptive) so two snapshots — or two servers — are always
#: mergeable bucket by bucket.
DEFAULT_LATENCY_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


class _Child:
    """One labelled series of a counter or gauge family."""

    __slots__ = ("_family", "value")

    def __init__(self, family: "_Family"):
        self._family = family
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self.value -= amount

    def set(self, value: float) -> None:
        with self._family._lock:
            self.value = float(value)

    def set_max(self, value: float) -> None:
        """Ratchet: keep the largest value ever seen (peak gauges)."""
        with self._family._lock:
            if value > self.value:
                self.value = float(value)


class _HistogramChild:
    """One labelled series of a histogram family (fixed buckets)."""

    __slots__ = ("_family", "counts", "sum", "count")

    def __init__(self, family: "_Family"):
        self._family = family
        self.counts = [0] * len(family.buckets)  # per-bucket, not cumulative
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        buckets = self._family.buckets
        # Bisect by hand: the bucket list is short and this sits on the
        # per-request hot path.
        index = 0
        while index < len(buckets) and value > buckets[index]:
            index += 1
        with self._family._lock:
            if index < len(self.counts):
                self.counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate from the bucket counts."""
        with self._family._lock:
            cumulative = []
            total = 0
            for count in self.counts:
                total += count
                cumulative.append(total)
            overflow = self.count - total
            return quantile_from_buckets(
                list(zip(self._family.buckets, cumulative)),
                self.count,
                q,
                overflow=overflow,
            )


class _Family:
    """One named metric family; children keyed by label values."""

    __slots__ = ("name", "help", "kind", "labelnames", "buckets",
                 "_lock", "_children")

    def __init__(self, name, help_text, kind, labelnames, buckets, lock):
        self.name = _check_name(name)
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ObservabilityError(f"invalid label name {label!r}")
        self.buckets = buckets
        self._lock = lock
        self._children: dict[tuple, object] = {}

    def labels(self, **labelvalues):
        if set(labelvalues) != set(self.labelnames):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = (
                    _HistogramChild(self)
                    if self.kind == "histogram"
                    else _Child(self)
                )
                self._children[key] = child
            return child

    # Unlabelled convenience: treat the family as its only series.
    def _default(self):
        if self.labelnames:
            raise ObservabilityError(
                f"metric {self.name!r} is labelled by {self.labelnames}; "
                "call .labels(...) first"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def set_max(self, value: float) -> None:
        self._default().set_max(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def quantile(self, q: float) -> float:
        return self._default().quantile(q)

    @property
    def value(self) -> float:
        return self._default().value

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum

    def total(self) -> float:
        """Sum of a counter/gauge family's children across label sets."""
        with self._lock:
            return sum(child.value for child in self._children.values())


class MetricsRegistry:
    """All metric families of one process component, behind one lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, name, help_text, kind, labelnames, buckets=None):
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ObservabilityError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.labelnames}"
                    )
                return family
        family = _Family(name, help_text, kind, labelnames, buckets, self._lock)
        with self._lock:
            return self._families.setdefault(name, family)

    def counter(self, name, help_text: str = "", labelnames=()):
        return self._register(name, help_text, "counter", labelnames)

    def gauge(self, name, help_text: str = "", labelnames=()):
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(
        self, name, help_text: str = "", labelnames=(),
        buckets=DEFAULT_LATENCY_BUCKETS,
    ):
        buckets = tuple(sorted(float(bound) for bound in buckets))
        if not buckets:
            raise ObservabilityError("histogram needs at least one bucket")
        family = self._register(
            name, help_text, "histogram", labelnames, buckets
        )
        if family.buckets != buckets:
            raise ObservabilityError(
                f"histogram {name!r} already registered with different buckets"
            )
        return family

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def snapshot(self) -> dict:
        """JSON-safe view of every family, read in one locked pass.

        Histogram buckets come out *cumulative* (Prometheus ``le``
        semantics) with a final ``"+Inf"`` bound, so the snapshot is
        directly renderable and mergeable.
        """
        with self._lock:
            out: dict = {}
            for name, family in sorted(self._families.items()):
                samples = []
                for key, child in sorted(family._children.items()):
                    labels = dict(zip(family.labelnames, key))
                    if family.kind == "histogram":
                        cumulative, total = [], 0
                        for bound, count in zip(family.buckets, child.counts):
                            total += count
                            cumulative.append([bound, total])
                        cumulative.append(["+Inf", child.count])
                        samples.append({
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": cumulative,
                        })
                    else:
                        samples.append({"labels": labels, "value": child.value})
                out[name] = {
                    "type": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "samples": samples,
                }
            return out

    def render(self) -> str:
        return render_prometheus(self.snapshot())


# ----------------------------------------------------------------------
# Snapshot helpers (everything below works on the JSON-safe snapshot,
# so clients of the ``metrics`` op — `repro top`, the benchmarks —
# need no live registry).
# ----------------------------------------------------------------------

def sample_value(snapshot: dict, name: str, labels=None, default=0.0):
    """Value of one counter/gauge sample, or sum over all its series
    when ``labels`` is None."""
    family = snapshot.get(name)
    if family is None:
        return default
    if labels is None:
        return sum(s.get("value", 0.0) for s in family["samples"])
    wanted = {k: str(v) for k, v in labels.items()}
    for sample in family["samples"]:
        if sample["labels"] == wanted:
            return sample.get("value", default)
    return default


def _histogram_samples(snapshot, name, labels):
    family = snapshot.get(name)
    if family is None or family["type"] != "histogram":
        return []
    if labels is None:
        return family["samples"]
    wanted = {k: str(v) for k, v in labels.items()}
    return [s for s in family["samples"] if s["labels"] == wanted]


def histogram_stats(snapshot: dict, name: str, labels=None):
    """``(sum, count, cumulative_buckets)`` of one histogram series
    (series merged bucket-by-bucket when ``labels`` is None)."""
    samples = _histogram_samples(snapshot, name, labels)
    if not samples:
        return 0.0, 0, []
    total_sum = sum(s["sum"] for s in samples)
    total_count = sum(s["count"] for s in samples)
    merged: dict = {}
    for sample in samples:
        for bound, cumulative in sample["buckets"]:
            key = math.inf if bound == "+Inf" else float(bound)
            merged[key] = merged.get(key, 0) + cumulative
    buckets = [
        ("+Inf" if bound == math.inf else bound, count)
        for bound, count in sorted(merged.items())
    ]
    return total_sum, total_count, buckets


def histogram_quantile(snapshot: dict, name: str, q: float, labels=None):
    _, count, buckets = histogram_stats(snapshot, name, labels)
    finite = [(b, c) for b, c in buckets if b != "+Inf"]
    overflow = count - (finite[-1][1] if finite else 0)
    return quantile_from_buckets(finite, count, q, overflow=overflow)


def quantile_from_buckets(buckets, count, q, *, overflow=0):
    """Interpolated quantile from ``[(upper_bound, cumulative), ...]``.

    Observations past the last finite bucket clamp to its bound —
    fixed buckets cannot say more about the tail than "beyond".
    """
    if count <= 0 or not buckets:
        return 0.0
    rank = q * count
    previous_bound, previous_cumulative = 0.0, 0
    for bound, cumulative in buckets:
        if cumulative >= rank and cumulative > previous_cumulative:
            span = cumulative - previous_cumulative
            fraction = (rank - previous_cumulative) / span
            return previous_bound + (bound - previous_bound) * min(
                max(fraction, 0.0), 1.0
            )
        previous_bound, previous_cumulative = bound, cumulative
    return buckets[-1][0] if overflow else previous_bound


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _unescape(value: str) -> str:
    out, index = [], 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _format_value(value) -> str:
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: dict) -> str:
    """The whole snapshot in Prometheus text exposition format."""
    lines = []
    for name, family in snapshot.items():
        if family["help"]:
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if family["type"] == "histogram":
                for bound, cumulative in sample["buckets"]:
                    le = "+Inf" if bound == "+Inf" else _format_value(bound)
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{_format_value(cumulative)}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} "
                    f"{_format_value(sample['count'])}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*,?'
)


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text format back into ``{"types": ..., "samples":
    ...}``.

    ``types`` maps family name → type; ``samples`` maps
    ``(sample_name, ((label, value), ...))`` → float.  Raises
    :class:`~repro.errors.ObservabilityError` on malformed lines — the
    obs-smoke job scrapes a live server through this, so a rendering
    bug fails loudly.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: dict[tuple, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                raise ObservabilityError(f"malformed TYPE line {lineno}: {raw!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) >= 3:
                helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ObservabilityError(f"malformed sample line {lineno}: {raw!r}")
        labels = []
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_text):
                if pair.start() != consumed:
                    break
                labels.append(
                    (pair.group("name"), _unescape(pair.group("value")))
                )
                consumed = pair.end()
            if consumed != len(label_text):
                raise ObservabilityError(
                    f"malformed labels on line {lineno}: {raw!r}"
                )
        try:
            value = float(match.group("value").replace("+Inf", "inf"))
        except ValueError as error:
            raise ObservabilityError(
                f"malformed value on line {lineno}: {raw!r}"
            ) from error
        samples[(match.group("name"), tuple(sorted(labels)))] = value
    return {"types": types, "helps": helps, "samples": samples}
