"""Deterministic, seeded fault injection for the serve/ingest stack.

A :class:`FaultPlan` is a pure description of *what goes wrong when*:
a set of :class:`FaultSpec` windows (each naming a hook point, an
activation window inside the scenario, a per-call firing probability,
an injected delay, and whether the fault raises) plus a schedule of
:class:`OperatorEvent` actions (mid-traffic hot reloads and rollbacks)
the scenario runner executes through the normal ``reload`` op.

A :class:`FaultInjector` turns the plan into decisions at the **opt-in
hooks** wired through the stack::

    server.worker_kill      SummaryServer._execute_items — the whole
                            coalesced flush dies, like a killed worker
    server.backend          SummaryServer._execute_items / the
                            non-coalesced executor — slow or erroring
                            backend calls
    server.drop_connection  SummaryServer._serve_request — the server
                            closes the client connection unanswered
    client.drop_connection  ServeClient.call — the client's own
                            connection drops mid-request (flaky network)
    watcher.poll            StoreWatcher._latest_version — manifest
                            polls fail transiently
    ingest.append           IngestPipeline.append — the append fails
                            before any state mutates (safely retryable)

Every component takes an optional ``chaos=`` injector and consults it
only when present: without one, the hooks cost a single ``is None``
check and nothing else.

Determinism: each hook point draws from its own
``random.Random(f"chaos:{seed}:{hook}")`` stream, so the k-th decision
at a hook is a pure function of the seed — replaying a scenario with
the same seed replays the same fault schedule (window placement is
seeded too, see :meth:`FaultPlan.build`).  Wall-clock interleaving
across threads still varies run to run; the *decision streams* do not.

Raised faults are :class:`~repro.errors.InjectedFault` — a dedicated
error class so callers (and the serve layer's 503 mapping) can never
confuse an injected fault with a real bug.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass

from repro.errors import ChaosError, InjectedFault

#: Every hook point the serve/ingest layers consult (module docstring
#: has the wiring map).
HOOKS = (
    "server.worker_kill",
    "server.backend",
    "server.drop_connection",
    "client.drop_connection",
    "cluster.worker_kill",
    "watcher.poll",
    "ingest.append",
)

#: User-facing fault names (CLI ``--faults``) → what they inject.
FAULT_NAMES = (
    "worker-kill",
    "slow-backend",
    "error-backend",
    "drop-connection",
    "client-drop",
    "cluster-kill",
    "watcher",
    "reload",
    "rollback",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a hook point, an activation window, and an effect."""

    hook: str
    #: Per-hook-call firing probability while the window is active.
    probability: float = 1.0
    #: Injected sleep in seconds (slow faults); applied before ``error``.
    delay_s: float = 0.0
    #: Raise :class:`InjectedFault` when firing.
    error: bool = False
    #: Activation window, in seconds since :meth:`FaultInjector.start`.
    start_s: float = 0.0
    stop_s: float = math.inf

    def __post_init__(self):
        if self.hook not in HOOKS:
            raise ChaosError(
                f"unknown chaos hook {self.hook!r}; choose from {HOOKS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ChaosError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.delay_s < 0:
            raise ChaosError(f"fault delay_s must be >= 0, got {self.delay_s}")
        if self.stop_s <= self.start_s:
            raise ChaosError(
                f"fault window [{self.start_s}, {self.stop_s}) is empty"
            )

    def active_at(self, elapsed_s: float) -> bool:
        return self.start_s <= elapsed_s < self.stop_s


@dataclass(frozen=True)
class OperatorEvent:
    """One scheduled operator action the scenario runner executes."""

    at_s: float
    action: str  # "reload" (to latest) or "rollback" (to version - 1)

    def __post_init__(self):
        if self.action not in ("reload", "rollback"):
            raise ChaosError(
                f"operator action must be 'reload' or 'rollback', "
                f"got {self.action!r}"
            )
        if self.at_s < 0:
            raise ChaosError(f"operator at_s must be >= 0, got {self.at_s}")


@dataclass(frozen=True)
class FaultPlan:
    """What goes wrong when: fault windows + operator events, seeded."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    operations: tuple[OperatorEvent, ...] = ()

    def for_hook(self, hook: str) -> tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs if spec.hook == hook)

    def max_window_s(self, hook: str) -> float:
        """Longest contiguous activation window on ``hook`` (0 if none).

        The scenario's staleness bound budgets for the longest
        ``watcher.poll`` outage this way.
        """
        return max(
            (spec.stop_s - spec.start_s for spec in self.for_hook(hook)),
            default=0.0,
        )

    @property
    def fault_kinds(self) -> tuple[str, ...]:
        return tuple(sorted({spec.hook for spec in self.specs}))

    @classmethod
    def quiet(cls, seed: int = 0) -> "FaultPlan":
        """No faults, no operator events — the no-chaos control plan."""
        return cls(seed=seed)

    @classmethod
    def build(
        cls,
        seed: int,
        duration_s: float,
        faults: tuple[str, ...] = ("all",),
    ) -> "FaultPlan":
        """Derive a plan for a ``duration_s`` scenario from the seed.

        ``faults`` selects by user-facing name (:data:`FAULT_NAMES`);
        ``("all",)`` enables everything, ``("none",)`` / ``()`` builds
        the quiet plan.  Window placement, window lengths, and operator
        times all come from ``random.Random(f"fault-plan:{seed}")``, so
        the same ``(seed, duration_s, faults)`` always yields the same
        plan — the replayability half of the soak acceptance criterion.
        """
        if duration_s <= 0:
            raise ChaosError(f"duration_s must be > 0, got {duration_s}")
        names = tuple(faults)
        if names in ((), ("none",)):
            return cls.quiet(seed)
        if "all" in names:
            names = FAULT_NAMES
        unknown = sorted(set(names) - set(FAULT_NAMES))
        if unknown:
            raise ChaosError(
                f"unknown fault name(s) {unknown}; choose from "
                f"{', '.join(FAULT_NAMES)} (or 'all' / 'none')"
            )
        rng = random.Random(f"fault-plan:{seed}")
        # Faults only fire in the middle of the scenario: the first 10%
        # warms up cleanly, the last 15% drains cleanly so every
        # injected failure has time to be retried to success.
        lo, hi = 0.10 * duration_s, 0.85 * duration_s
        windows_per_fault = max(1, round(duration_s / 20.0))

        def windows(max_len_s: float):
            for _ in range(windows_per_fault):
                length = rng.uniform(0.4, 1.0) * max_len_s
                start = rng.uniform(lo, max(hi - length, lo))
                yield start, start + length

        specs: list[FaultSpec] = []

        def add(hook, *, probability, delay_s=0.0, error=False, max_len_s=1.5):
            for start, stop in windows(max_len_s):
                specs.append(
                    FaultSpec(
                        hook,
                        probability=probability,
                        delay_s=delay_s,
                        error=error,
                        start_s=start,
                        stop_s=stop,
                    )
                )

        if "worker-kill" in names:
            add("server.worker_kill", probability=0.25, error=True)
        if "slow-backend" in names:
            add(
                "server.backend",
                probability=1.0,
                delay_s=rng.uniform(0.02, 0.05),
            )
        if "error-backend" in names:
            add("server.backend", probability=0.35, error=True)
        if "drop-connection" in names:
            add("server.drop_connection", probability=0.15)
        if "client-drop" in names:
            add("client.drop_connection", probability=0.10)
        if "cluster-kill" in names:
            # The coordinator consults this per execution round and
            # kills one pool worker when it fires; low probability so a
            # window costs a handful of kills, not a massacre — the
            # respawn path needs time to prove the pool heals.
            add("cluster.worker_kill", probability=0.02, max_len_s=1.0)
        if "watcher" in names:
            # Every poll in the window fails; window length bounds the
            # watcher outage the staleness invariant must budget for.
            add("watcher.poll", probability=1.0, error=True, max_len_s=1.0)
        if "error-backend" in names or "worker-kill" in names:
            # Transient ingest failures ride with the backend-failure
            # faults: the hook fires before any pipeline state mutates,
            # so the ingester retries the same batch cleanly.
            add("ingest.append", probability=0.3, error=True, max_len_s=1.0)

        operations: list[OperatorEvent] = []
        events_per_kind = max(1, round(duration_s / 25.0))
        if "reload" in names:
            for _ in range(events_per_kind):
                operations.append(OperatorEvent(rng.uniform(lo, hi), "reload"))
        if "rollback" in names:
            for _ in range(events_per_kind):
                operations.append(
                    OperatorEvent(rng.uniform(lo, hi), "rollback")
                )
        operations.sort(key=lambda event: event.at_s)
        return cls(seed=seed, specs=tuple(specs), operations=tuple(operations))

    def describe(self) -> str:
        kinds = ", ".join(self.fault_kinds) or "none"
        return (
            f"FaultPlan(seed={self.seed}, {len(self.specs)} fault window(s) "
            f"on [{kinds}], {len(self.operations)} operator event(s))"
        )


class FaultInjector:
    """Turns a :class:`FaultPlan` into thread-safe, seeded decisions.

    Components call :meth:`decide` (pure decision, safe on the event
    loop) or :meth:`act` (decision + injected sleep / raise, executor
    threads only).  Before :meth:`start` — and after :meth:`disable` —
    every decision is "no fault", so a scenario can warm up and drain
    cleanly around its chaos phase.
    """

    def __init__(self, plan: FaultPlan, *, clock=time.monotonic):
        self.plan = plan
        self._clock = clock
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._rngs = {
            hook: random.Random(f"chaos:{plan.seed}:{hook}") for hook in HOOKS
        }
        # guarded-by: _lock
        self._calls = {hook: 0 for hook in HOOKS}
        # guarded-by: _lock
        self._injected = {hook: 0 for hook in HOOKS}
        # guarded-by: _lock
        self._events: list[dict] = []
        self._t0: float | None = None
        self._enabled = True
        # Optional mirror into a server's MetricsRegistry (see
        # :meth:`bind_metrics`); the dict counters above stay the
        # source of truth for scenario reports.
        self._metric_calls = None
        self._metric_injected = None

    def bind_metrics(self, registry) -> None:
        """Mirror decisions into a :class:`~repro.obs.MetricsRegistry`,
        so injected chaos shows up on the same Prometheus scrape as the
        latency and errors it causes."""
        self._metric_calls = registry.counter(
            "repro_chaos_calls_total", "Chaos-hook decisions taken, by hook.",
            ("hook",),
        )
        self._metric_injected = registry.counter(
            "repro_chaos_injections_total",
            "Faults actually injected, by hook and fault shape.",
            ("hook", "fault"),
        )

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "FaultInjector":
        """Arm the injector; fault windows are relative to this instant."""
        self._t0 = self._clock()
        return self

    def disable(self) -> None:
        """Stop injecting (drain phase); decisions become "no fault"."""
        self._enabled = False

    @property
    def elapsed_s(self) -> float:
        return 0.0 if self._t0 is None else self._clock() - self._t0

    # -- decisions ---------------------------------------------------------
    def decide(self, hook: str) -> FaultSpec | None:
        """The k-th seeded decision at ``hook``; None = no fault.

        Never blocks and never raises: safe to call from async code.
        """
        if hook not in HOOKS:
            raise ChaosError(
                f"unknown chaos hook {hook!r}; choose from {HOOKS}"
            )
        if self._t0 is None or not self._enabled:
            return None
        now = self.elapsed_s
        with self._lock:
            self._calls[hook] += 1
            if self._metric_calls is not None:
                self._metric_calls.labels(hook=hook).inc()
            rng = self._rngs[hook]
            for spec in self.plan.for_hook(hook):
                if not spec.active_at(now):
                    continue
                if rng.random() >= spec.probability:
                    continue
                self._injected[hook] += 1
                if self._metric_injected is not None:
                    self._metric_injected.labels(
                        hook=hook,
                        fault="error" if spec.error else "delay",
                    ).inc()
                self._events.append(
                    {
                        "t_s": round(now, 4),
                        "kind": "inject",
                        "hook": hook,
                        "delay_s": spec.delay_s,
                        "error": spec.error,
                    }
                )
                return spec
        return None

    def act(self, hook: str) -> None:
        """Decide, then *apply* the fault: sleep ``delay_s`` and/or
        raise :class:`InjectedFault`.  Blocking — executor threads and
        synchronous code only, never the event loop."""
        spec = self.decide(hook)
        if spec is None:
            return
        if spec.delay_s > 0:
            time.sleep(spec.delay_s)
        if spec.error:
            raise InjectedFault(hook)

    # -- introspection -----------------------------------------------------
    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def stats(self) -> dict:
        with self._lock:
            return {
                "seed": self.plan.seed,
                "enabled": self._enabled,
                "calls": dict(self._calls),
                "injected": dict(self._injected),
                "total_injected": sum(self._injected.values()),
            }

    def __repr__(self):
        injected = sum(self._injected.values())
        return (
            f"FaultInjector({self.plan.describe()}, "
            f"injected={injected})"
        )


__all__ = [
    "FAULT_NAMES",
    "HOOKS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "OperatorEvent",
]
