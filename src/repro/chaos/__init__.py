"""Chaos/soak harness: fault-injected multi-tenant traffic with
invariant checking (see docs/testing.md).

* :mod:`repro.chaos.faults` — the deterministic, seeded fault injector
  and its opt-in hook points across serve/ingest.
* :mod:`repro.chaos.scenario` — the multi-tenant scenario runner:
  reader tenants, a streaming ingester, an operator schedule, and a
  live watched :class:`~repro.serve.server.SummaryServer` under fault
  injection.
* :mod:`repro.chaos.invariants` — the after-the-fact audit: zero
  dropped requests, bounded staleness, monotone lineage, bounded error
  drift vs exact ground truth.
"""

from repro.chaos.faults import (
    FAULT_NAMES,
    HOOKS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    OperatorEvent,
)
from repro.chaos.invariants import (
    InvariantCheck,
    InvariantReport,
    check_invariants,
)
from repro.chaos.scenario import (
    SoakConfig,
    SoakResult,
    measure_drift,
    run_soak,
)

__all__ = [
    "FAULT_NAMES",
    "HOOKS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InvariantCheck",
    "InvariantReport",
    "OperatorEvent",
    "SoakConfig",
    "SoakResult",
    "check_invariants",
    "measure_drift",
    "run_soak",
]
