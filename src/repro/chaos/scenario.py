"""Multi-tenant soak scenarios: sustained mixed traffic under chaos.

One :func:`run_soak` call stands up the whole serving stack the way a
deployment runs it — a store-backed :class:`SummaryServer` with its
:class:`StoreWatcher` polling, N named reader sessions, one streaming
ingester publishing ``delta_refresh`` micro-batches, an operator thread
executing scheduled hot reloads and rollbacks — and lets a seeded
:class:`~repro.chaos.faults.FaultInjector` attack every layer at once
for ``duration_s`` seconds.  Everything that happens is recorded into a
:class:`SoakResult`, which :func:`~repro.chaos.invariants.check_invariants`
then audits: zero dropped requests, bounded staleness, monotone
lineage, bounded error drift.

The reader protocol is the honest-client loop: a 503 (admission control
*or* an injected backend fault — the server answers both with a
``retry_after`` hint) backs off jittered on the hint; a transport
failure (dropped connection, either side) reconnects and retries; only
a request that cannot reach ``ok`` before its deadline counts as
dropped — and any drop fails the scenario.

Determinism: the fault schedule, the ingest batch contents, and every
reader's query choices are all pure functions of ``SoakConfig.seed``,
so a failing scenario replays from its seed (wall-clock interleaving
varies; the decision streams do not).  The no-chaos drift baseline
exploits the same property: the identical seeded batch sequence is
replayed offline through a fresh pipeline, and the chaos run's final
model must match it to within the acceptance ratio.
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.api.builder import SummaryBuilder
from repro.api.explorer import Explorer
from repro.api.store import SummaryStore
from repro.baselines.exact import ExactBackend
from repro.chaos.faults import FaultInjector, FaultPlan
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ChaosError, InjectedFault, ReproError
from repro.ingest.pipeline import IngestPipeline
from repro.serve.client import ServeClient, ServeError, ServerBusy, backoff_delay
from repro.serve.server import ServeConfig, ServerThread, SummaryServer

#: Scalar queries both the drift measurement and the readers use.
SCALAR_QUERIES = (
    "SELECT COUNT(*) FROM R",
    "SELECT COUNT(*) FROM R WHERE state = 'CA'",
    "SELECT COUNT(*) FROM R WHERE state = 'NY' AND hour >= 6",
    "SELECT COUNT(*) FROM R WHERE hour BETWEEN 2 AND 7",
    "SELECT COUNT(*) FROM R WHERE state = 'TX' AND hour < 4",
    "SELECT COUNT(*) FROM R WHERE hour >= 9",
)

#: The readers mix in grouped queries and a canonical-duplicate range
#: (it coalesces and caches with its BETWEEN spelling above).
READER_QUERIES = SCALAR_QUERIES + (
    "SELECT COUNT(*) FROM R GROUP BY state",
    "SELECT COUNT(*) FROM R WHERE hour >= 2 AND hour <= 7",
)


@dataclass(frozen=True)
class SoakConfig:
    """One soak scenario, fully determined by its fields."""

    duration_s: float = 10.0
    seed: int = 0
    #: Concurrent reader sessions (tenants).
    readers: int = 4
    #: Per-request retry budget: a request that cannot reach ``ok``
    #: within this window counts as dropped (and fails the scenario).
    request_deadline_s: float = 10.0
    #: Streaming ingester cadence and micro-batch size.
    ingest_every_s: float = 0.5
    batch_rows: int = 40
    #: Store-watcher poll interval (the serving staleness knob).
    watch_interval: float = 0.2
    #: Rows in the base relation the initial summary is fitted from.
    base_rows: int = 600
    #: Version-probe cadence (feeds staleness + monotonicity checks).
    probe_every_s: float = 0.02
    #: Fault selection, as FaultPlan.build() names; ("none",) = quiet.
    faults: tuple[str, ...] = ("all",)
    #: Store directory; None = a temporary directory per run.
    store_dir: str | None = None

    def validated(self) -> "SoakConfig":
        checks = [
            (self.duration_s > 0, "duration_s must be > 0"),
            (self.readers >= 1, "readers must be >= 1"),
            (self.request_deadline_s > 0, "request_deadline_s must be > 0"),
            (self.ingest_every_s > 0, "ingest_every_s must be > 0"),
            (self.batch_rows >= 1, "batch_rows must be >= 1"),
            (self.watch_interval > 0, "watch_interval must be > 0"),
            (self.base_rows >= 10, "base_rows must be >= 10"),
            (self.probe_every_s > 0, "probe_every_s must be > 0"),
        ]
        for ok, message in checks:
            if not ok:
                raise ChaosError(f"soak config: {message}")
        return self

    @property
    def staleness_bound_s(self) -> float:
        """The invariant's ε is derived, not guessed: two poll
        intervals (one for cadence, one for a poll already in flight)
        plus the longest injected watcher outage plus a 1 s allowance
        for the executor-side reload itself."""
        plan = FaultPlan.build(self.seed, self.duration_s, self.faults)
        return (
            2 * self.watch_interval + plan.max_window_s("watcher.poll") + 1.0
        )


@dataclass
class SoakResult:
    """Everything one scenario did, ready for invariant checking."""

    config: SoakConfig = field(default_factory=SoakConfig)
    plan: FaultPlan = field(default_factory=FaultPlan)
    #: One dict per logical reader request (terminal outcome).
    requests: list = field(default_factory=list)
    #: ``{"t_s", "version"}`` stream from the dedicated probe session.
    probes: list = field(default_factory=list)
    #: ``{"t_s", "version", "parent", "rows"}`` per ingester publish.
    publishes: list = field(default_factory=list)
    #: ``{"t_s", "action", "version"}`` per executed operator event.
    operations: list = field(default_factory=list)
    #: The injector's event log.
    injections: list = field(default_factory=list)
    server_stats: dict = field(default_factory=dict)
    #: Mean relative error of the final chaos-run model vs ExactBackend.
    error_drift: float = 0.0
    #: Same batches replayed with no chaos (the acceptance reference).
    baseline_drift: float = 0.0
    staleness_bound_s: float = 1.0
    duration_s: float = 0.0

    @property
    def dropped(self) -> list:
        return [r for r in self.requests if r.get("outcome") != "ok"]

    @property
    def drift_ratio(self) -> float:
        return self.error_drift / max(self.baseline_drift, 1e-9)

    def max_staleness_s(self) -> float:
        """Worst observed publish→served lag (rollback-obscured
        publishes excluded, mirroring the invariant)."""
        probes = sorted(self.probes, key=lambda p: p["t_s"])
        worst = 0.0
        for publish in self.publishes:
            if any(
                op.get("action") == "rollback"
                and publish["t_s"] <= op["t_s"] <= publish["t_s"] + self.staleness_bound_s
                for op in self.operations
            ):
                continue
            seen = next(
                (
                    p["t_s"]
                    for p in probes
                    if p["t_s"] >= publish["t_s"]
                    and p["version"] >= publish["version"]
                ),
                None,
            )
            if seen is not None:
                worst = max(worst, seen - publish["t_s"])
        return worst

    def to_metrics(self) -> dict:
        """Flat numeric dict for the benchmark emitter."""
        requests = len(self.requests)
        return {
            "soak_duration_s": round(self.duration_s, 2),
            "soak_requests": float(requests),
            "soak_qps": round(requests / max(self.duration_s, 1e-9), 1),
            "dropped_requests": float(len(self.dropped)),
            "busy_retries": float(
                sum(r.get("busy_retries", 0) for r in self.requests)
            ),
            "fault_retries": float(
                sum(r.get("fault_retries", 0) for r in self.requests)
            ),
            "publishes": float(len(self.publishes)),
            "rollbacks": float(
                sum(1 for op in self.operations if op["action"] == "rollback")
            ),
            "faults_injected": float(len(self.injections)),
            "staleness_max_s": round(self.max_staleness_s(), 3),
            "final_drift": round(self.error_drift, 5),
            "error_drift_ratio": round(self.drift_ratio, 4),
        }

    def event_log(self) -> list[dict]:
        """Merged, time-ordered scenario log (the CI failure artifact):
        every injection, operator action, publish, and non-ok request."""
        events = []
        for entry in self.injections:
            events.append(entry)
        for entry in self.operations:
            events.append({"kind": "operator", **entry})
        for entry in self.publishes:
            events.append({"kind": "publish", **entry})
        for entry in self.dropped:
            events.append({"kind": "dropped-request", **entry})
        return sorted(events, key=lambda e: e.get("t_s", 0.0))


# ----------------------------------------------------------------------
# The synthetic multi-tenant workload (all seed-derived)
# ----------------------------------------------------------------------

def soak_schema() -> Schema:
    return Schema(
        [
            Domain("state", ["CA", "NY", "WA", "TX", "OR", "FL"]),
            integer_domain("hour", 12),
        ]
    )


def soak_relation(schema: Schema, rows: int, seed: int) -> Relation:
    """A skewed base relation (popular states, rush hours)."""
    rng = np.random.default_rng(seed)
    states = schema.domain("state").size
    hours = schema.domain("hour").size
    state_p = np.array([0.30, 0.25, 0.15, 0.12, 0.10, 0.08])[:states]
    state_p = state_p / state_p.sum()
    return Relation(
        schema,
        [
            rng.choice(states, size=rows, p=state_p),
            rng.integers(0, hours, rows),
        ],
    )


def soak_batch(schema: Schema, rows: int, seed: int, index: int) -> list:
    """Label rows for micro-batch ``index`` — a pure function of the
    seed, so the chaos run and the no-chaos replay ingest byte-identical
    data."""
    rng = random.Random(f"soak-batch:{seed}:{index}")
    states = schema.domain("state").labels
    hours = schema.domain("hour").labels
    weights = [5, 4, 3, 2, 2, 1][: len(states)]
    return [
        (rng.choices(states, weights=weights)[0], rng.choice(hours))
        for _ in range(rows)
    ]


def _fit_summary(relation: Relation, name: str):
    return (
        SummaryBuilder(relation)
        .pairs(("state", "hour"))
        .per_pair_budget(24)
        .iterations(30)
        .name(name)
        .fit()
    )


def measure_drift(summary, relation: Relation) -> float:
    """Mean relative error of ``summary`` vs exact ground truth over
    the scalar soak workload."""
    exact = Explorer.attach(ExactBackend(relation))
    approx = Explorer.attach(summary)
    errors = []
    for sql in SCALAR_QUERIES:
        truth = exact.sql(sql).scalar
        estimate = approx.sql(sql).scalar
        errors.append(abs(estimate - truth) / max(abs(truth), 1.0))
    return float(np.mean(errors))


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------

class _Scenario:
    """One live soak: owns the server, the threads, and the record."""

    NAME = "soak"

    def __init__(self, config: SoakConfig, store_root: str):
        self.config = config
        self.plan = FaultPlan.build(
            config.seed, config.duration_s, config.faults
        )
        self.injector = FaultInjector(self.plan)
        self.store = SummaryStore(store_root)
        self.schema = soak_schema()
        self.base_relation = soak_relation(
            self.schema, config.base_rows, config.seed
        )
        self.stop = threading.Event()
        self._record_lock = threading.Lock()
        # guarded-by: _record_lock
        self.requests: list = []
        self.probes: list = []
        self.publishes: list = []
        self.operations: list = []
        self.batches_applied = 0
        self.server: SummaryServer | None = None
        self.port = 0

    # -- clock -------------------------------------------------------------
    def now(self) -> float:
        return self.injector.elapsed_s

    # -- recording (one lock, many threads) --------------------------------
    def _record(self, bucket: list, entry: dict) -> None:
        with self._record_lock:
            bucket.append(entry)

    # -- reader tenants ----------------------------------------------------
    def _reader_loop(self, index: int) -> None:
        rng = random.Random(f"soak-reader:{self.config.seed}:{index}")
        client = ServeClient(
            port=self.port,
            timeout=min(self.config.request_deadline_s, 10.0),
            session=f"tenant-{index}",
            chaos=self.injector,
        )
        try:
            while not self.stop.is_set():
                sql = rng.choice(READER_QUERIES)
                self._one_request(client, index, sql, rng)
        finally:
            client.close()

    def _one_request(self, client, index, sql, rng) -> None:
        deadline = time.monotonic() + self.config.request_deadline_s
        busy = faults = attempt = 0
        last_error = ""
        while True:
            try:
                response = client.call("query", sql=sql, session=client.session)
            except ServerBusy as err:
                busy += 1
                last_error = str(err)
                delay = backoff_delay(attempt, err.retry_after, rng)
            except ServeError as err:
                if err.status == 400:
                    # Permanent: a malformed query can never succeed, so
                    # retrying would only disguise a real bug as load.
                    self._record(
                        self.requests,
                        {
                            "t_s": round(self.now(), 4),
                            "reader": index,
                            "sql": sql,
                            "outcome": "rejected",
                            "error": str(err),
                            "busy_retries": busy,
                            "fault_retries": faults,
                        },
                    )
                    return
                # Transport trouble (either side dropped the connection)
                # or a 500: reconnect and retry until the deadline.
                faults += 1
                last_error = str(err)
                client.close()
                delay = backoff_delay(attempt, 0.01, rng)
            else:
                result = response.get("result") or {}
                self._record(
                    self.requests,
                    {
                        "t_s": round(self.now(), 4),
                        "reader": index,
                        "sql": sql,
                        "outcome": "ok",
                        "version": response.get("version"),
                        "value": result.get("value"),
                        "busy_retries": busy,
                        "fault_retries": faults,
                    },
                )
                return
            attempt += 1
            if time.monotonic() + delay > deadline:
                self._record(
                    self.requests,
                    {
                        "t_s": round(self.now(), 4),
                        "reader": index,
                        "sql": sql,
                        "outcome": "dropped",
                        "error": last_error,
                        "busy_retries": busy,
                        "fault_retries": faults,
                    },
                )
                return
            time.sleep(delay)

    # -- the streaming ingester --------------------------------------------
    def _ingest_loop(self) -> None:
        pipeline = IngestPipeline.from_store(
            self.store,
            self.NAME,
            self.base_relation,
            chaos=self.injector,
        )
        index = 0
        while not self.stop.wait(self.config.ingest_every_s):
            rows = soak_batch(
                self.schema, self.config.batch_rows, self.config.seed, index
            )
            try:
                report = pipeline.append(rows, tag=f"soak-{index}")
            except InjectedFault:
                # The hook fires before any pipeline state mutates: the
                # same batch index is retried on the next tick.
                continue
            self._record(
                self.publishes,
                {
                    "t_s": round(self.now(), 4),
                    "version": report.published_version,
                    "parent": report.lineage["parent_version"],
                    "rows": report.rows_appended,
                },
            )
            index += 1
        self.batches_applied = index

    # -- the operator (scheduled reloads and rollbacks) --------------------
    def _operator_loop(self) -> None:
        client = ServeClient(port=self.port, timeout=5.0, session="operator")
        try:
            for event in self.plan.operations:
                delay = event.at_s - self.now()
                if delay > 0 and self.stop.wait(delay):
                    return
                if self.stop.is_set():
                    return
                # Record the *intent* time, captured before the reload
                # RPC is issued: the server-side flip can never precede
                # it, so a probe that observes the effect mid-RPC still
                # finds an operator event at an earlier t_s.
                t_intent = round(self.now(), 4)
                for _ in range(3):  # drop-connection chaos hits us too
                    try:
                        if event.action == "rollback":
                            current = client.ping()["version"]
                            if current <= 1:
                                break
                            target = current - 1
                            client.reload(version=target)
                            self._record(
                                self.operations,
                                {
                                    "t_s": t_intent,
                                    "action": "rollback",
                                    "version": target,
                                    "from_version": current,
                                },
                            )
                        else:
                            version = client.reload()
                            self._record(
                                self.operations,
                                {
                                    "t_s": t_intent,
                                    "action": "reload",
                                    "version": version,
                                },
                            )
                        break
                    except (ServeError, ReproError):
                        client.close()
                        time.sleep(0.05)
        finally:
            client.close()

    # -- the version probe -------------------------------------------------
    def _probe_loop(self) -> None:
        client = ServeClient(port=self.port, timeout=5.0, session="probe")
        try:
            while not self.stop.is_set():
                self._probe_once(client)
                self.stop.wait(self.config.probe_every_s)
        finally:
            client.close()

    def _probe_once(self, client) -> int | None:
        try:
            version = client.ping()["version"]
        except (ServeError, ReproError):
            client.close()  # dropped by chaos; reconnect next probe
            return None
        self._record(
            self.probes,
            {"t_s": round(self.now(), 4), "version": version},
        )
        return version

    # -- orchestration -----------------------------------------------------
    def run(self) -> SoakResult:
        config = self.config
        summary = _fit_summary(self.base_relation, self.NAME)
        self.store.save(summary, self.NAME, tag="base")

        server_config = ServeConfig(
            host="127.0.0.1",
            port=0,
            watch_interval=config.watch_interval,
            max_queue=max(8 * config.readers, 32),
        )
        self.server = SummaryServer(
            store=self.store,
            name=self.NAME,
            config=server_config,
            chaos=self.injector,
        )
        thread = ServerThread(self.server)
        with thread as running:
            self.port = running.port
            self.injector.start()
            workers = [
                threading.Thread(
                    target=self._reader_loop,
                    args=(index,),
                    name=f"soak-reader-{index}",
                    daemon=True,
                )
                for index in range(config.readers)
            ]
            workers.append(
                threading.Thread(
                    target=self._ingest_loop, name="soak-ingest", daemon=True
                )
            )
            workers.append(
                threading.Thread(
                    target=self._operator_loop,
                    name="soak-operator",
                    daemon=True,
                )
            )
            workers.append(
                threading.Thread(
                    target=self._probe_loop, name="soak-probe", daemon=True
                )
            )
            for worker in workers:
                worker.start()
            time.sleep(config.duration_s)
            # Drain: stop injecting first so every in-flight retry loop
            # converges, then stop the traffic.
            self.injector.disable()
            self.stop.set()
            join_deadline = config.request_deadline_s + 10.0
            for worker in workers:
                worker.join(timeout=join_deadline)
            self._drain_tail()
            server_stats = self.server.stats()

        return self._finalize(server_stats)

    def _drain_tail(self) -> None:
        """Give the watcher its bound to surface the final publish, so
        the staleness check is fair to versions published at the end."""
        if not self.publishes:
            return
        final = self.publishes[-1]
        bound = self.config.staleness_bound_s
        if any(
            op["action"] == "rollback"
            and final["t_s"] <= op["t_s"] <= final["t_s"] + bound
            for op in self.operations
        ):
            return  # rollback-obscured; the invariant exempts it too
        client = ServeClient(port=self.port, timeout=5.0, session="probe")
        try:
            deadline = time.monotonic() + bound
            while time.monotonic() < deadline:
                version = self._probe_once(client)
                if version is not None and version >= final["version"]:
                    return
                time.sleep(self.config.probe_every_s)
        finally:
            client.close()

    def _finalize(self, server_stats: dict) -> SoakResult:
        # Final chaos-run model + ground truth over what was ingested.
        record, final_summary = self.store.load_with_record(self.NAME)
        applied = max(
            self.batches_applied, record.version - 1
        )  # versions 2..k+1 are batches 0..k-1
        combined = self.base_relation
        replay_summary = None
        if applied >= 0:
            base_fit = self.store.load(self.NAME, version=1)
            replay = IngestPipeline(base_fit, self.base_relation)
            for index in range(applied):
                replay.append(
                    soak_batch(
                        self.schema,
                        self.config.batch_rows,
                        self.config.seed,
                        index,
                    )
                )
            combined = replay.relation
            replay_summary = replay.summary
        error_drift = measure_drift(final_summary, combined)
        baseline_drift = (
            measure_drift(replay_summary, combined)
            if replay_summary is not None
            else error_drift
        )
        return SoakResult(
            config=self.config,
            plan=self.plan,
            requests=self.requests,
            probes=self.probes,
            publishes=self.publishes,
            operations=self.operations,
            injections=self.injector.events(),
            server_stats=server_stats,
            error_drift=error_drift,
            baseline_drift=baseline_drift,
            staleness_bound_s=self.config.staleness_bound_s,
            duration_s=self.config.duration_s,
        )


def run_soak(config: SoakConfig | None = None) -> SoakResult:
    """Run one seeded soak scenario end to end; returns the record.

    Check it with :func:`~repro.chaos.invariants.check_invariants` —
    running and judging are separate so tests can audit synthetic
    records and benchmarks can emit metrics before asserting.
    """
    config = (config or SoakConfig()).validated()
    if config.store_dir is not None:
        return _Scenario(config, config.store_dir).run()
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        return _Scenario(config, tmp).run()


__all__ = [
    "READER_QUERIES",
    "SCALAR_QUERIES",
    "SoakConfig",
    "SoakResult",
    "measure_drift",
    "run_soak",
    "soak_batch",
    "soak_relation",
    "soak_schema",
]
