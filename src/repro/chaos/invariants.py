"""Invariant checking over one soak scenario's event record.

:func:`check_invariants` consumes the :class:`~repro.chaos.scenario.SoakResult`
a scenario produced and verifies the four properties a healthy serving
deployment keeps under chaos:

1. **zero dropped requests** — every reader request reached a terminal
   ``ok`` outcome; saturation and injected faults only ever showed up
   as clean Retry-After backoffs or transport retries that eventually
   succeeded.
2. **bounded staleness** — each version published by the ingester was
   observed being served within ``staleness_bound_s`` of its publish
   (the scenario derives the bound from the watch interval, the
   longest injected watcher outage, and a fixed reload allowance).
   A publish immediately obscured by an operator rollback is exempt —
   the rollback-stickiness contract *requires* it to stay hidden.
3. **monotone lineage** — the probe stream's served version never
   decreases except right after an injected operator rollback (and
   then exactly to the rollback target), and the published versions
   form an unbroken parent chain in the store lineage.
4. **bounded error drift** — the final chaos-run model's error against
   :class:`~repro.baselines.exact.ExactBackend` ground truth stays
   within ``max_drift_ratio`` of the no-chaos replay of the identical
   batch sequence (plus a small additive slack for near-zero
   baselines).  Chaos may slow the system down; it must not corrupt
   the model.

The checker is pure over the result record, so tests feed it synthetic
:class:`SoakResult` instances to prove each violation is caught.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ChaosError


@dataclass(frozen=True)
class InvariantCheck:
    """One invariant's verdict."""

    name: str
    ok: bool
    detail: str

    def describe(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


@dataclass(frozen=True)
class InvariantReport:
    """Every invariant's verdict over one scenario."""

    checks: tuple[InvariantCheck, ...] = ()

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def violations(self) -> tuple[InvariantCheck, ...]:
        return tuple(check for check in self.checks if not check.ok)

    def describe(self) -> str:
        return "\n".join(check.describe() for check in self.checks)

    def raise_if_failed(self) -> None:
        if not self.ok:
            failed = "; ".join(
                f"{check.name}: {check.detail}" for check in self.violations
            )
            raise ChaosError(f"soak invariant violation(s): {failed}")

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checks": [
                {"name": c.name, "ok": c.ok, "detail": c.detail}
                for c in self.checks
            ],
        }


def _check_zero_dropped(result) -> InvariantCheck:
    requests = result.requests
    dropped = [r for r in requests if r.get("outcome") != "ok"]
    busy = sum(r.get("busy_retries", 0) for r in requests)
    faults = sum(r.get("fault_retries", 0) for r in requests)
    if dropped:
        sample = dropped[0]
        return InvariantCheck(
            "zero-dropped",
            False,
            f"{len(dropped)}/{len(requests)} request(s) dropped; first: "
            f"reader {sample.get('reader')} {sample.get('sql')!r} "
            f"({sample.get('error')})",
        )
    return InvariantCheck(
        "zero-dropped",
        True,
        f"{len(requests)} requests all answered "
        f"({busy} busy retries, {faults} fault retries)",
    )


def _rollback_near(operations, t_s: float, window_s: float) -> bool:
    return any(
        op.get("action") == "rollback" and t_s <= op["t_s"] <= t_s + window_s
        for op in operations
    )


def _check_staleness(result) -> InvariantCheck:
    bound = result.staleness_bound_s
    probes = sorted(result.probes, key=lambda p: p["t_s"])
    late: list[str] = []
    exempt = 0
    worst = 0.0
    for publish in result.publishes:
        version, t_pub = publish["version"], publish["t_s"]
        if _rollback_near(result.operations, t_pub, bound):
            # Rollback stickiness: a publish obscured by an operator
            # rollback legitimately stays hidden until the next one.
            exempt += 1
            continue
        seen_at = next(
            (
                p["t_s"]
                for p in probes
                if p["t_s"] >= t_pub and p["version"] >= version
            ),
            None,
        )
        if seen_at is None:
            late.append(f"v{version} (published t={t_pub:.2f}s) never served")
            continue
        lag = seen_at - t_pub
        worst = max(worst, lag)
        if lag > bound:
            late.append(
                f"v{version} served {lag:.2f}s after publish (bound {bound:.2f}s)"
            )
    if late:
        return InvariantCheck(
            "bounded-staleness", False, "; ".join(late[:3])
        )
    return InvariantCheck(
        "bounded-staleness",
        True,
        f"{len(result.publishes)} publish(es) served within {bound:.2f}s "
        f"(worst lag {worst:.2f}s, {exempt} rollback-exempt)",
    )


#: Forward slack when matching a backwards version flip to its rollback:
#: the operator records intent time, but if chaos drops the reload
#: *response* the record lands on a retry, up to ~2 sleep+retry cycles
#: after the server actually flipped.
_ROLLBACK_RECORD_SLACK_S = 0.25


def _check_monotone(result) -> InvariantCheck:
    bound = result.staleness_bound_s
    probes = sorted(result.probes, key=lambda p: p["t_s"])
    flips: list[str] = []
    for before, after in zip(probes, probes[1:]):
        if after["version"] >= before["version"]:
            continue
        t_flip = after["t_s"]
        explained = any(
            op.get("action") == "rollback"
            and op.get("version") == after["version"]
            and t_flip - bound <= op["t_s"] <= t_flip + _ROLLBACK_RECORD_SLACK_S
            for op in result.operations
        )
        if not explained:
            flips.append(
                f"v{before['version']} -> v{after['version']} at "
                f"t={t_flip:.2f}s with no rollback to explain it"
            )
    publishes = result.publishes
    broken_chain: list[str] = []
    for previous, current in zip(publishes, publishes[1:]):
        if current.get("parent") != previous["version"]:
            broken_chain.append(
                f"v{current['version']} claims parent "
                f"{current.get('parent')}, expected v{previous['version']}"
            )
    if flips or broken_chain:
        return InvariantCheck(
            "monotone-lineage", False, "; ".join((flips + broken_chain)[:3])
        )
    rollbacks = sum(
        1 for op in result.operations if op.get("action") == "rollback"
    )
    return InvariantCheck(
        "monotone-lineage",
        True,
        f"{len(probes)} probes monotone ({rollbacks} injected rollback(s) "
        f"excepted); lineage chain of {len(publishes)} publish(es) unbroken",
    )


def _check_drift(result, max_ratio: float, slack: float) -> InvariantCheck:
    drift, baseline = result.error_drift, result.baseline_drift
    allowed = baseline * max_ratio + slack
    if drift > allowed:
        return InvariantCheck(
            "bounded-error-drift",
            False,
            f"chaos-run drift {drift:.4f} exceeds {max_ratio:g}x no-chaos "
            f"baseline {baseline:.4f} (+{slack:g} slack)",
        )
    return InvariantCheck(
        "bounded-error-drift",
        True,
        f"drift {drift:.4f} within {max_ratio:g}x of no-chaos "
        f"baseline {baseline:.4f}",
    )


def check_invariants(
    result,
    *,
    max_drift_ratio: float = 1.2,
    drift_slack: float = 0.01,
) -> InvariantReport:
    """Check all four soak invariants over one scenario's record.

    ``max_drift_ratio`` is the acceptance bound: the chaos run's final
    model error may not exceed this multiple of the no-chaos replay's.
    ``drift_slack`` is a small additive allowance so a near-zero
    baseline cannot turn measurement noise into a huge ratio.
    """
    return InvariantReport(
        checks=(
            _check_zero_dropped(result),
            _check_staleness(result),
            _check_monotone(result),
            _check_drift(result, max_drift_ratio, drift_slack),
        )
    )


__all__ = ["InvariantCheck", "InvariantReport", "check_invariants"]
