"""Command-line interface.

EntropyDB as a tool: generate datasets, fit summaries, query them, and
re-run the paper's experiments, all from the shell.  Models are
addressed either by bare file prefix (``--model``) or by name inside a
versioned summary store (``--store`` + ``--name``).

::

    python -m repro generate flights --rows 50000 --out data/flights
    python -m repro build --data data/flights --pairs fl_time:distance \\
        --budget 300 --store models --name flights --tag first
    python -m repro build --data data/flights --pairs fl_time:distance \\
        --budget 300 --shards 4 --shard-by origin_state --store models \\
        --name flights-sharded
    python -m repro query --store models --name flights \\
        --sql "SELECT COUNT(*) FROM R WHERE distance >= 1000"
    python -m repro query --store models --name flights --file queries.sql
    cat queries.sql | python -m repro query --model models/flights --file -
    python -m repro query --store models --name flights --explain \\
        --sql "SELECT COUNT(*) FROM R WHERE distance BETWEEN 500 AND 900"
    python -m repro info --store models --name flights
    python -m repro ingest --store models --name flights \\
        --data data/flights --batch data/new_rows --write-data data/flights
    python -m repro store list --dir models
    python -m repro serve --store models --name flights --port 9042 --watch 2
    python -m repro ping --port 9042
    python -m repro bench-serve --store models --name flights --clients 8
    python -m repro soak --duration 30 --seed 7 --faults all
    python -m repro experiment fig5 --scale small
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.api.builder import SummaryBuilder
from repro.api.explorer import Explorer
from repro.api.store import SummaryStore
from repro.core.sharding import ShardedSummary, load_model
from repro.core.summary import EntropySummary
from repro.data.serialize import load_relation, save_relation
from repro.errors import ReproError


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EntropyDB: probabilistic database summaries (VLDB'17)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset and save it"
    )
    generate.add_argument(
        "dataset", choices=["flights", "flights-fine", "particles"]
    )
    generate.add_argument("--rows", type=int, default=50_000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, help="output path prefix")

    def add_model_source(command, required_model_help):
        """``--model`` prefix or ``--store``/``--name`` addressing."""
        command.add_argument("--model", help=required_model_help)
        command.add_argument("--store", help="summary store directory")
        command.add_argument("--name", help="summary name inside the store")
        command.add_argument(
            "--version", type=int, help="store version (default: latest)"
        )
        command.add_argument("--tag", help="store tag (default: latest)")

    build = commands.add_parser("build", help="fit a summary from saved data")
    build.add_argument("--data", required=True, help="relation path prefix")
    build.add_argument(
        "--pairs",
        default="",
        help="comma-separated 2D pairs as attrA:attrB (empty = 1D only)",
    )
    build.add_argument("--budget", type=int, default=200, help="buckets per pair")
    build.add_argument(
        "--heuristic", choices=["composite", "large", "zero"], default="composite"
    )
    build.add_argument("--iterations", type=int, default=30)
    build.add_argument(
        "--shards",
        type=int,
        default=1,
        help="fit this many per-shard models instead of one (default 1)",
    )
    build.add_argument(
        "--shard-by",
        help="partition rows by this attribute's value ranges "
        "(default: round-robin)",
    )
    build.add_argument(
        "--workers",
        type=int,
        help="worker processes for the sharded build "
        "(default: one per shard up to the core count)",
    )
    build.add_argument("--out", help="model path prefix")
    build.add_argument("--store", help="save into this summary store instead")
    build.add_argument("--name", help="summary name inside the store")
    build.add_argument("--tag", help="store tag for the saved version")

    query = commands.add_parser("query", help="run SQL against a saved model")
    add_model_source(query, "model path prefix")
    query.add_argument("--sql", help="one SQL query to run")
    query.add_argument(
        "--file",
        help="batch mode: file of SQL queries, one per line ('-' = stdin); "
        "the whole batch runs through the planner's batched executor and "
        "prints one result per line",
    )
    query.add_argument(
        "--rounded", action="store_true", help="round estimates the paper's way"
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print each query's plan (normalize → route → execute) "
        "instead of executing it",
    )

    info = commands.add_parser("info", help="describe a saved model")
    add_model_source(info, "model path prefix")

    ingest = commands.add_parser(
        "ingest",
        help="append a batch of rows and delta-refresh a stored summary",
    )
    ingest.add_argument("--store", required=True, help="summary store directory")
    ingest.add_argument("--name", required=True, help="summary name inside the store")
    ingest.add_argument(
        "--data",
        required=True,
        help="base relation prefix — the data the stored summary was fitted "
        "from (plus every batch already ingested)",
    )
    ingest.add_argument(
        "--batch",
        required=True,
        help="relation prefix of the rows to append (labels are re-indexed; "
        "unseen labels grow the domains)",
    )
    ingest.add_argument(
        "--version", type=int, help="refresh from this version (default: latest)"
    )
    ingest.add_argument("--tag", help="store tag for the published version")
    ingest.add_argument(
        "--iterations",
        type=int,
        default=30,
        help="solver sweep cap for the delta refits (warm starts usually "
        "converge well inside it; default 30)",
    )
    ingest.add_argument(
        "--write-data",
        help="also save the combined relation to this prefix, so the next "
        "ingest can pass it as --data",
    )

    def add_serve_tuning(command):
        """The serving-layer knobs shared by serve and bench-serve."""
        command.add_argument(
            "--window-ms",
            type=float,
            default=2.0,
            help="coalescing window in milliseconds (default 2.0)",
        )
        command.add_argument(
            "--max-batch",
            type=int,
            default=64,
            help="distinct queries that force an early flush (default 64)",
        )
        command.add_argument(
            "--max-queue",
            type=int,
            default=64,
            help="admitted-but-unfinished request bound (default 64)",
        )
        command.add_argument(
            "--max-inflight",
            type=int,
            default=16,
            help="per-client in-flight request bound (default 16)",
        )
        command.add_argument(
            "--cache-size",
            type=int,
            default=2048,
            help="shared result-cache entries (0 disables; default 2048)",
        )
        command.add_argument(
            "--cache-ttl",
            type=float,
            default=60.0,
            help="result time-to-live in seconds (default 60)",
        )
        command.add_argument(
            "--no-coalesce",
            action="store_true",
            help="execute each request individually (baseline mode)",
        )
        command.add_argument(
            "--rounded",
            action="store_true",
            help="round estimates the paper's way",
        )
        command.add_argument(
            "--protocol",
            choices=("binary", "json"),
            default="binary",
            help="wire protocol: length-prefixed binary (default) or "
            "line-delimited JSON for debugging; the server always "
            "answers JSON clients either way",
        )
        command.add_argument(
            "--shard-service-ms",
            type=float,
            metavar="MS",
            help="floor every evaluation flush at MS x resident shards — "
            "a calibrated stand-in for per-shard service time when "
            "sizing the multi-worker tier (default: off)",
        )

    serve = commands.add_parser(
        "serve",
        help="run the concurrent query server over a saved model",
    )
    add_model_source(serve, "model path prefix (no hot reload; prefer --store)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=9042,
        help="listening port (0 picks an ephemeral one; default 9042)",
    )
    serve.add_argument(
        "--watch",
        type=float,
        metavar="SECONDS",
        help="poll the store at this interval and hot-reload when a newer "
        "version appears (e.g. one published by `repro ingest`); "
        "the interval is the serving-staleness bound",
    )
    serve.add_argument(
        "--trace-ring",
        type=int,
        default=256,
        help="finished request traces kept in memory for the metrics op "
        "(0 disables the ring; default 256)",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        metavar="MS",
        help="log every request slower than this many milliseconds "
        "(with its trace and plan explain; default: off)",
    )
    serve.add_argument(
        "--slow-query-log",
        metavar="PATH",
        help="also append slow-query entries to this JSONL file",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard-affine worker processes; >1 serves a sharded model "
        "through the frontend + worker-pool tier (default 1: "
        "single-process)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="owners per shard in the worker pool (>1 keeps answers "
        "exact while a worker is down; default 1)",
    )
    add_serve_tuning(serve)

    ping = commands.add_parser(
        "ping", help="health-check a running query server"
    )
    ping.add_argument("--host", default="127.0.0.1")
    ping.add_argument("--port", type=int, required=True)
    ping.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    metrics = commands.add_parser(
        "metrics",
        help="scrape a running server's metrics (Prometheus text format)",
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, required=True)
    metrics.add_argument(
        "--json",
        action="store_true",
        help="print the structured snapshot instead of Prometheus text",
    )
    metrics.add_argument(
        "--traces",
        action="store_true",
        help="with --json: include the recent-trace ring",
    )
    metrics.add_argument(
        "--slow",
        action="store_true",
        help="with --json: include recent slow-query entries",
    )

    top = commands.add_parser(
        "top",
        help="live per-op / per-stage latency tables for a running server",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, required=True)
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default 2.0)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after this many refreshes (0 = until Ctrl-C)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (same as --iterations 1)",
    )

    bench_serve = commands.add_parser(
        "bench-serve",
        help="load-test the serving layer (in-process server + K clients)",
    )
    add_model_source(bench_serve, "model path prefix")
    bench_serve.add_argument(
        "--clients", type=int, default=8, help="concurrent clients (default 8)"
    )
    bench_serve.add_argument(
        "--requests",
        type=int,
        default=50,
        help="requests per client (default 50)",
    )
    bench_serve.add_argument(
        "--queries",
        help="file of workload SQL, one per line ('-' = stdin); "
        "default: a mix derived from the model's schema",
    )
    add_serve_tuning(bench_serve)
    bench_serve.add_argument(
        "--pipeline",
        type=int,
        default=1,
        help="statements per pipelined query_batch round trip "
        "(default 1 = one query per round trip)",
    )
    bench_serve.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    bench_serve.add_argument(
        "--out", help="also write the JSON report to this path"
    )

    store = commands.add_parser(
        "store", help="inspect a versioned summary store"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_list = store_commands.add_parser(
        "list", help="list every stored summary version"
    )
    store_list.add_argument("--dir", required=True, help="store directory")

    soak = commands.add_parser(
        "soak",
        help="run a seeded, fault-injected multi-tenant soak scenario "
        "and check its invariants (docs/testing.md)",
    )
    soak.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="traffic phase length in seconds (default 30)",
    )
    soak.add_argument(
        "--seed",
        type=int,
        default=0,
        help="scenario seed: fault schedule, ingest batches, and reader "
        "query choices all derive from it (default 0)",
    )
    soak.add_argument(
        "--readers", type=int, default=4, help="reader tenants (default 4)"
    )
    soak.add_argument(
        "--faults",
        default="all",
        help="comma-separated fault names (worker-kill, slow-backend, "
        "error-backend, drop-connection, client-drop, cluster-kill, "
        "watcher, reload, rollback), or 'all' / 'none' (default all)",
    )
    soak.add_argument(
        "--watch",
        type=float,
        default=0.2,
        help="store-watcher poll interval in seconds (default 0.2)",
    )
    soak.add_argument(
        "--ingest-every",
        type=float,
        default=0.5,
        help="streaming ingester cadence in seconds (default 0.5)",
    )
    soak.add_argument(
        "--batch-rows",
        type=int,
        default=40,
        help="rows per ingest micro-batch (default 40)",
    )
    soak.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    soak.add_argument(
        "--out", help="also write the full JSON report to this path"
    )
    soak.add_argument(
        "--events",
        help="write the scenario event log (injections, operator actions, "
        "publishes, dropped requests) to this path as JSON lines",
    )

    experiment = commands.add_parser(
        "experiment", help="run one of the paper's experiments"
    )
    experiment.add_argument(
        "name",
        choices=[
            "fig2", "fig3", "fig5", "fig6", "fig7", "fig8",
            "compression", "latency", "solver", "variance", "strategy",
        ],
    )
    experiment.add_argument(
        "--scale", choices=["paper", "medium", "small"], default=None
    )
    return parser


def _cmd_generate(args) -> int:
    if args.dataset in ("flights", "flights-fine"):
        from repro.datasets import generate_flights

        dataset = generate_flights(num_rows=args.rows, seed=args.seed)
        relation = dataset.fine if args.dataset == "flights-fine" else dataset.coarse
    else:
        from repro.datasets import generate_particles

        dataset = generate_particles(
            rows_per_snapshot=args.rows, seed=args.seed
        )
        relation = dataset.relation
    save_relation(relation, args.out)
    print(f"wrote {relation!r} to {args.out}.(schema.json|columns.npz)")
    return 0


def _parse_pairs(spec: str) -> list[tuple[str, str]]:
    pairs = []
    for chunk in filter(None, (part.strip() for part in spec.split(","))):
        if ":" not in chunk:
            raise ReproError(
                f"pair {chunk!r} must have the form attrA:attrB"
            )
        left, _, right = chunk.partition(":")
        pairs.append((left.strip(), right.strip()))
    return pairs


def _cmd_build(args) -> int:
    if not args.out and not args.store:
        raise ReproError("give --out PREFIX and/or --store DIR")
    relation = load_relation(args.data)
    pairs = _parse_pairs(args.pairs)
    name = args.name or (
        os.path.basename(args.out) if args.out else "summary"
    )
    builder = (
        SummaryBuilder(relation)
        .heuristic(args.heuristic)
        .iterations(args.iterations)
        .name(name)
    )
    if pairs:
        builder.pairs(*pairs).per_pair_budget(args.budget)
    if args.shard_by and args.shards < 2:
        raise ReproError("--shard-by needs --shards >= 2")
    if args.shards != 1:
        # Delegate validation too: --shards 0 must error, not silently
        # build an unsharded model.
        builder.shards(
            args.shards, by=args.shard_by, workers=args.workers
        )
    summary = builder.fit()
    report = summary.size_report()
    if isinstance(summary, ShardedSummary):
        print(
            f"built {summary!r}\n"
            f"  terms: {report['num_terms']} across {report['num_shards']} shards"
        )
    else:
        print(
            f"built {summary!r}\n"
            f"  solver: {summary.report!r}\n"
            f"  terms: {report['num_terms']} "
            f"(uncompressed {report['num_uncompressed_monomials']})"
        )
    if args.out:
        summary.save(args.out)
        if isinstance(summary, ShardedSummary):
            print(
                f"  saved to {args.out}.json + "
                f"{summary.num_shards} shard file pairs"
            )
        else:
            print(f"  saved to {args.out}.(json|npz)")
    if args.store:
        record = SummaryStore(args.store).save(summary, name, tag=args.tag)
        print(f"  stored as {record.describe()} in {args.store}")
    return 0


def _load_summary(args) -> "EntropySummary | ShardedSummary":
    """Resolve --model / --store addressing shared by query and info."""
    if bool(args.model) == bool(args.store):
        raise ReproError("give exactly one of --model PREFIX or --store DIR")
    if args.model:
        return load_model(args.model)
    if not args.name:
        raise ReproError("--store needs --name")
    return SummaryStore(args.store).load(
        args.name, version=args.version, tag=args.tag
    )


def _format_result(result) -> str:
    """One line per result: a number, or tab-joined label/count pairs
    separated by '; ' for grouped queries."""
    if result.is_scalar:
        return f"{result.scalar:.3f}"
    return "; ".join(
        "\t".join([*(str(label) for label in row.labels), f"{row.count:.3f}"])
        for row in result.rows
    )


def _read_batch(source: str) -> list[str]:
    """SQL queries from a file ('-' = stdin): one per line, blank lines
    and ``--`` comment lines skipped."""
    if source == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise ReproError(
                f"cannot read query file {source!r}: {error}"
            ) from error
    queries = []
    for line in text.splitlines():
        line = line.strip()
        if line and not line.startswith("--"):
            queries.append(line)
    if not queries:
        raise ReproError(f"no queries found in {source!r}")
    return queries


def _cmd_query(args) -> int:
    if bool(args.sql) == bool(args.file):
        raise ReproError("give exactly one of --sql QUERY or --file PATH")
    explorer = Explorer.attach(_load_summary(args), rounded=args.rounded)
    if args.sql:
        if args.explain:
            print(explorer.explain(args.sql))
            return 0
        result = explorer.sql(args.sql)
        if result.is_scalar:
            print(f"{result.scalar:.3f}")
        else:
            for row in result.rows:
                labels = "\t".join(str(label) for label in row.labels)
                print(f"{labels}\t{row.count:.3f}")
        return 0
    queries = _read_batch(args.file)
    if args.explain:
        for sql in queries:
            print(explorer.explain(sql))
        return 0
    # One batched pass: scalar counts of the batch share one vectorized
    # backend evaluation; one output line per input query, in order.
    for result in explorer.run_many(queries):
        print(_format_result(result))
    return 0


def _cmd_ingest(args) -> int:
    from repro.ingest import IngestPipeline

    if args.iterations < 1:
        raise ReproError(f"--iterations must be >= 1, got {args.iterations}")
    relation = load_relation(args.data)
    batch = load_relation(args.batch)
    pipeline = IngestPipeline.from_store(
        SummaryStore(args.store),
        args.name,
        relation,
        version=args.version,
        max_iterations=args.iterations,
    )
    report = pipeline.append(batch, tag=args.tag)
    print(report.describe())
    if report.record is not None:
        print(f"  stored as {report.record.describe()} in {args.store}")
        print(
            "  live servers watching this store (repro serve --watch) "
            "pick the new version up automatically"
        )
    if args.write_data:
        combined = pipeline.relation
        save_relation(combined, args.write_data)
        print(f"  combined relation ({combined.num_rows} rows) saved to {args.write_data}")
    return 0


def _cmd_store(args) -> int:
    store = SummaryStore(args.dir)
    records = store.list()
    if not records:
        print(f"store {args.dir} is empty")
        return 0
    for record in records:
        print(record.describe())
    return 0


def _cmd_info(args) -> int:
    summary = _load_summary(args)
    report = summary.size_report()
    print(f"model:      {summary.name}")
    print(f"cardinality {summary.total}")
    print(f"schema:     {summary.schema!r}")
    if isinstance(summary, ShardedSummary):
        by = f" by {summary.shard_by}" if summary.shard_by else " (round-robin)"
        print(f"sharding:   {summary.num_shards} shards{by}")
        print(f"statistics: {summary.num_statistics} across shards")
        print(f"polynomial: {report['num_terms']} terms across shards")
        for index, shard in enumerate(summary.shards):
            print(f"  shard {index}: {shard!r}")
    else:
        print(
            f"statistics: {summary.statistic_set.num_one_dim} 1D + "
            f"{summary.statistic_set.num_multi_dim} multi-dim"
        )
        print(
            f"polynomial: {report['num_terms']} terms in "
            f"{report['num_components']} components "
            f"(uncompressed {report['num_uncompressed_monomials']})"
        )
    print(f"storage:    {report['total_bytes']} bytes in memory")
    return 0


def _serve_config(args, *, host: str | None = None, port: int | None = None):
    """Build a ServeConfig from the shared tuning flags (validation
    errors name the flag at fault, see ServeConfig.validated)."""
    from repro.serve import ServeConfig

    return ServeConfig(
        host=host if host is not None else args.host,
        port=port if port is not None else args.port,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        max_inflight_per_client=args.max_inflight,
        cache_size=args.cache_size,
        cache_ttl=args.cache_ttl,
        coalesce=not args.no_coalesce,
        rounded=args.rounded,
        binary=getattr(args, "protocol", "binary") != "json",
        watch_interval=getattr(args, "watch", None),
        trace_ring=getattr(args, "trace_ring", 256),
        slow_query_ms=getattr(args, "slow_query_ms", None),
        slow_query_log=getattr(args, "slow_query_log", None),
        shard_service_ms=getattr(args, "shard_service_ms", None),
    ).validated()


def _make_server(args, config):
    """A SummaryServer from --model or --store/--name addressing.

    Store addressing keeps the store attached, so ``SIGHUP`` and the
    ``reload`` op can hot-swap versions; ``--model`` serves a fixed
    in-memory summary.
    """
    from repro.serve import ClusterCoordinator, SummaryServer

    if bool(args.model) == bool(args.store):
        raise ReproError("give exactly one of --model PREFIX or --store DIR")
    workers = getattr(args, "workers", 1) or 1
    if workers > 1:
        kwargs = dict(
            workers=workers,
            replicas=getattr(args, "replicas", 1) or 1,
            config=config,
        )
        if args.model:
            return ClusterCoordinator(load_model(args.model), **kwargs)
        if not args.name:
            raise ReproError("--store needs --name")
        return ClusterCoordinator(
            store=args.store,
            name=args.name,
            version=args.version,
            tag=args.tag,
            **kwargs,
        )
    if args.model:
        return SummaryServer(load_model(args.model), config=config)
    if not args.name:
        raise ReproError("--store needs --name")
    return SummaryServer(
        store=args.store,
        name=args.name,
        version=args.version,
        tag=args.tag,
        config=config,
    )


def _cmd_serve(args) -> int:
    import asyncio

    config = _serve_config(args)
    server = _make_server(args, config)

    async def run():
        await server.start()
        mode = (
            f"coalescing {config.window_ms:g} ms"
            if config.coalesce
            else "no coalescing"
        )
        workers = getattr(args, "workers", 1) or 1
        if workers > 1:
            mode += f", {workers} workers"
        print(
            f"serving {server.label} on {server.host}:{server.port} "
            f"(version {server.version}, {mode}, "
            f"max_queue={config.max_queue}); SIGHUP reloads, Ctrl-C stops",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("stopped")
    return 0


def _cmd_ping(args) -> int:
    import json
    import time

    from repro.serve import ServeClient

    start = time.perf_counter()
    with ServeClient(args.host, args.port) as client:
        pong = client.ping()
    latency_ms = (time.perf_counter() - start) * 1e3
    if args.json:
        print(
            json.dumps(
                {
                    "ok": True,
                    "host": args.host,
                    "port": args.port,
                    "version": pong["version"],
                    "latency_ms": round(latency_ms, 3),
                }
            )
        )
    else:
        print(
            f"pong from {args.host}:{args.port} in {latency_ms:.2f} ms "
            f"(version {pong['version']})"
        )
    return 0


def _cmd_bench_serve(args) -> int:
    import json

    from repro.serve import ServerThread, run_load
    from repro.serve.loadgen import default_workload

    if args.clients < 1:
        raise ReproError(f"--clients must be >= 1, got {args.clients}")
    if args.requests < 1:
        raise ReproError(f"--requests must be >= 1, got {args.requests}")
    config = _serve_config(args, host="127.0.0.1", port=0)
    server = _make_server(args, config)
    workload = (
        _read_batch(args.queries)
        if args.queries
        else default_workload(server.schema)
    )
    with ServerThread(server) as running:
        report = run_load(
            running.host,
            running.port,
            workload,
            clients=args.clients,
            requests_per_client=args.requests,
            protocol=args.protocol,
            pipeline=args.pipeline,
        )
    document = {
        "name": "bench-serve",
        "summary": server.label,
        "coalesce": config.coalesce,
        "window_ms": config.window_ms,
        "protocol": args.protocol,
        "pipeline": args.pipeline,
        "workload_queries": len(workload),
        **report.to_metrics(),
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(report.describe())
        if args.out:
            print(f"report written to {args.out}")
    return 1 if report.errors else 0


def _cmd_soak(args) -> int:
    import json

    from repro.chaos import SoakConfig, check_invariants, run_soak

    faults = tuple(
        part.strip() for part in args.faults.split(",") if part.strip()
    )
    config = SoakConfig(
        duration_s=args.duration,
        seed=args.seed,
        readers=args.readers,
        faults=faults or ("none",),
        watch_interval=args.watch,
        ingest_every_s=args.ingest_every,
        batch_rows=args.batch_rows,
    ).validated()
    if not args.json:
        print(
            f"soak: {config.duration_s:g}s, seed {config.seed}, "
            f"{config.readers} readers, faults [{', '.join(config.faults)}]",
            flush=True,
        )
    result = run_soak(config)
    report = check_invariants(result)
    metrics = result.to_metrics()
    # The event log and report land on disk *before* the exit code, so
    # a failing CI soak always uploads a diagnosable artifact.
    if args.events:
        with open(args.events, "w", encoding="utf-8") as handle:
            for event in result.event_log():
                handle.write(json.dumps(event, default=str) + "\n")
    document = {
        "config": {
            "duration_s": config.duration_s,
            "seed": config.seed,
            "readers": config.readers,
            "faults": list(config.faults),
            "watch_interval": config.watch_interval,
        },
        "metrics": metrics,
        "invariants": report.to_dict(),
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(
            f"  {metrics['soak_requests']:.0f} requests "
            f"({metrics['soak_qps']:.0f} q/s), "
            f"{metrics['publishes']:.0f} publishes, "
            f"{metrics['faults_injected']:.0f} faults injected"
        )
        print(report.describe())
        if args.events:
            print(f"event log written to {args.events}")
        if args.out:
            print(f"report written to {args.out}")
    return 0 if report.ok else 1


def _cmd_experiment(args) -> int:
    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale
    from repro import experiments

    runners = {
        "fig2": experiments.run_fig2,
        "fig3": experiments.run_fig3,
        "fig5": experiments.run_fig5,
        "fig6": experiments.run_fig6,
        "fig7": experiments.run_fig7,
        "fig8": experiments.run_fig8,
        "compression": experiments.run_compression,
        "latency": experiments.run_latency,
        "solver": experiments.run_solver_trace,
        "variance": experiments.run_variance,
        "strategy": experiments.run_strategy_ablation,
    }
    result = runners[args.name]()
    print(result.to_text())
    return 0


def _cmd_metrics(args) -> int:
    import json

    from repro.serve import ServeClient

    with ServeClient(args.host, args.port) as client:
        view = client.server_metrics(
            include_traces=args.traces, include_slow=args.slow
        )
    if args.json:
        payload = {"snapshot": view["snapshot"]}
        if args.traces:
            payload["traces"] = view.get("traces", [])
        if args.slow:
            payload["slow_queries"] = view.get("slow_queries", [])
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(view["prometheus"], end="")
    return 0


def _cmd_top(args) -> int:
    import time as _time

    from repro.obs import render_top
    from repro.serve import ServeClient

    iterations = 1 if args.once else max(int(args.iterations), 0)
    interval = max(float(args.interval), 0.1)
    previous = None
    shown = 0
    try:
        with ServeClient(args.host, args.port) as client:
            while True:
                snapshot = client.server_metrics()["snapshot"]
                text = render_top(
                    snapshot,
                    previous=previous,
                    interval_s=interval if previous is not None else None,
                )
                if shown:  # redraw in place after the first frame
                    print("\x1b[2J\x1b[H", end="")
                print(text, flush=True)
                previous = snapshot
                shown += 1
                if iterations and shown >= iterations:
                    return 0
                _time.sleep(interval)
    except KeyboardInterrupt:
        return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "build": _cmd_build,
    "query": _cmd_query,
    "info": _cmd_info,
    "ingest": _cmd_ingest,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "ping": _cmd_ping,
    "metrics": _cmd_metrics,
    "top": _cmd_top,
    "bench-serve": _cmd_bench_serve,
    "soak": _cmd_soak,
    "experiment": _cmd_experiment,
}


def main(argv=None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that exited; the Unix-polite
        # response is silence.  Detach stdout so the interpreter's exit
        # flush does not raise a second time.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
