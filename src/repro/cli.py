"""Command-line interface.

EntropyDB as a tool: generate datasets, fit summaries, query them, and
re-run the paper's experiments, all from the shell.

::

    python -m repro generate flights --rows 50000 --out data/flights
    python -m repro build --data data/flights --pairs fl_time:distance \\
        --budget 300 --out models/flights
    python -m repro query --model models/flights \\
        --sql "SELECT COUNT(*) FROM R WHERE distance >= 1000"
    python -m repro info --model models/flights
    python -m repro experiment fig5 --scale small
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.summary import EntropySummary
from repro.data.serialize import load_relation, save_relation
from repro.errors import ReproError


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EntropyDB: probabilistic database summaries (VLDB'17)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset and save it"
    )
    generate.add_argument(
        "dataset", choices=["flights", "flights-fine", "particles"]
    )
    generate.add_argument("--rows", type=int, default=50_000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, help="output path prefix")

    build = commands.add_parser("build", help="fit a summary from saved data")
    build.add_argument("--data", required=True, help="relation path prefix")
    build.add_argument(
        "--pairs",
        default="",
        help="comma-separated 2D pairs as attrA:attrB (empty = 1D only)",
    )
    build.add_argument("--budget", type=int, default=200, help="buckets per pair")
    build.add_argument(
        "--heuristic", choices=["composite", "large", "zero"], default="composite"
    )
    build.add_argument("--iterations", type=int, default=30)
    build.add_argument("--out", required=True, help="model path prefix")

    query = commands.add_parser("query", help="run SQL against a saved model")
    query.add_argument("--model", required=True, help="model path prefix")
    query.add_argument("--sql", required=True)
    query.add_argument(
        "--rounded", action="store_true", help="round estimates the paper's way"
    )

    info = commands.add_parser("info", help="describe a saved model")
    info.add_argument("--model", required=True)

    experiment = commands.add_parser(
        "experiment", help="run one of the paper's experiments"
    )
    experiment.add_argument(
        "name",
        choices=[
            "fig2", "fig3", "fig5", "fig6", "fig7", "fig8",
            "compression", "latency", "solver", "variance", "strategy",
        ],
    )
    experiment.add_argument("--scale", choices=["paper", "small"], default=None)
    return parser


def _cmd_generate(args) -> int:
    if args.dataset in ("flights", "flights-fine"):
        from repro.datasets import generate_flights

        dataset = generate_flights(num_rows=args.rows, seed=args.seed)
        relation = dataset.fine if args.dataset == "flights-fine" else dataset.coarse
    else:
        from repro.datasets import generate_particles

        dataset = generate_particles(
            rows_per_snapshot=args.rows, seed=args.seed
        )
        relation = dataset.relation
    save_relation(relation, args.out)
    print(f"wrote {relation!r} to {args.out}.(schema.json|columns.npz)")
    return 0


def _parse_pairs(spec: str) -> list[tuple[str, str]]:
    pairs = []
    for chunk in filter(None, (part.strip() for part in spec.split(","))):
        if ":" not in chunk:
            raise ReproError(
                f"pair {chunk!r} must have the form attrA:attrB"
            )
        left, _, right = chunk.partition(":")
        pairs.append((left.strip(), right.strip()))
    return pairs


def _cmd_build(args) -> int:
    relation = load_relation(args.data)
    pairs = _parse_pairs(args.pairs)
    summary = EntropySummary.build(
        relation,
        pairs=pairs or None,
        per_pair_budget=args.budget if pairs else None,
        heuristic=args.heuristic,
        max_iterations=args.iterations,
        name=os.path.basename(args.out),
    )
    summary.save(args.out)
    report = summary.size_report()
    print(
        f"built {summary!r}\n"
        f"  solver: {summary.report!r}\n"
        f"  terms: {report['num_terms']} "
        f"(uncompressed {report['num_uncompressed_monomials']})\n"
        f"  saved to {args.out}.(json|npz)"
    )
    return 0


def _cmd_query(args) -> int:
    from repro.query import SQLEngine, SummaryBackend

    summary = EntropySummary.load(args.model)
    engine = SQLEngine(
        SummaryBackend(summary, rounded=args.rounded), table_name="R"
    )
    result = engine.execute(args.sql)
    if result.is_scalar:
        print(f"{result.scalar:.3f}")
    else:
        for row in result.rows:
            labels = "\t".join(str(label) for label in row.labels)
            print(f"{labels}\t{row.count:.3f}")
    return 0


def _cmd_info(args) -> int:
    summary = EntropySummary.load(args.model)
    report = summary.size_report()
    print(f"model:      {summary.name}")
    print(f"cardinality {summary.total}")
    print(f"schema:     {summary.schema!r}")
    print(
        f"statistics: {summary.statistic_set.num_one_dim} 1D + "
        f"{summary.statistic_set.num_multi_dim} multi-dim"
    )
    print(
        f"polynomial: {report['num_terms']} terms in "
        f"{report['num_components']} components "
        f"(uncompressed {report['num_uncompressed_monomials']})"
    )
    print(f"storage:    {report['total_bytes']} bytes in memory")
    return 0


def _cmd_experiment(args) -> int:
    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale
    from repro import experiments

    runners = {
        "fig2": experiments.run_fig2,
        "fig3": experiments.run_fig3,
        "fig5": experiments.run_fig5,
        "fig6": experiments.run_fig6,
        "fig7": experiments.run_fig7,
        "fig8": experiments.run_fig8,
        "compression": experiments.run_compression,
        "latency": experiments.run_latency,
        "solver": experiments.run_solver_trace,
        "variance": experiments.run_variance,
        "strategy": experiments.run_strategy_ablation,
    }
    result = runners[args.name]()
    print(result.to_text())
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "build": _cmd_build,
    "query": _cmd_query,
    "info": _cmd_info,
    "experiment": _cmd_experiment,
}


def main(argv=None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
