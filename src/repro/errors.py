"""Exception hierarchy for the repro (EntropyDB reproduction) package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DomainError(ReproError):
    """A value is outside an attribute's active domain, or a domain is
    malformed (empty, unordered buckets, ...)."""


class SchemaError(ReproError):
    """A relation, statistic, or query references attributes inconsistently
    with the schema."""


class StatisticError(ReproError):
    """A statistic set violates the model's structural assumptions
    (e.g. overlapping 2D statistics on the same attribute pair)."""


class SolverError(ReproError):
    """The Mirror Descent solver failed to make progress or was given an
    infeasible statistic set."""


class QueryError(ReproError):
    """A query cannot be parsed or is not supported by the engine."""


class BudgetError(ReproError):
    """A statistic-selection budget is invalid or cannot be met."""


class IngestError(ReproError):
    """An append batch cannot be applied to a summary (schema mismatch,
    stale base relation, malformed rows, ...)."""


class ObservabilityError(ReproError):
    """The observability layer was misused (metric re-registered with a
    different type or label set, malformed exposition text, ...)."""


class ChaosError(ReproError):
    """The chaos/soak harness was misused (malformed fault plan or
    scenario config) or a soak scenario violated an invariant."""


class InjectedFault(ChaosError):
    """A fault deliberately injected by the chaos harness.

    Only ever raised when a :class:`~repro.chaos.FaultInjector` is
    explicitly attached to a component — production paths without an
    injector can never see it.  The serve layer maps it to a retryable
    503 (with a ``retry_after`` hint) so well-behaved clients recover
    the same way they recover from admission control.
    """

    def __init__(self, hook: str):
        super().__init__(f"chaos: injected fault at hook {hook!r}")
        self.hook = hook
