"""Fig. 7: scalability on the Particles data.

Three 4D selection-query templates, heavy and light hitters, run over
growing subsets of the particle table (1, 2, and 3 snapshots).
Methods: a uniform sample, a stratified sample over (density, grp),
EntNo2D (1D statistics only), and EntAll (2D statistics with
``particles_pair_budget`` buckets over the five most correlated
attribute pairs, snapshot excluded).  Reports average relative error
and average per-query runtime.
"""

from __future__ import annotations

from repro.api.builder import SummaryBuilder
from repro.api.explorer import Explorer
from repro.baselines import stratified_sample, uniform_sample
from repro.evaluation.harness import run_workload
from repro.evaluation.reporting import ExperimentResult
from repro.experiments.configs import ExperimentStore, default_store
from repro.stats.correlation import pair_correlations
from repro.stats.selection import choose_pairs_by_cover
from repro.workloads.selection_queries import heavy_hitters, light_hitters

TEMPLATES = [
    ("den & mass & grp & type", ("density", "mass", "grp", "type")),
    ("mass & x & y & z", ("mass", "x", "y", "z")),
    ("y & z & grp & type", ("y", "z", "grp", "type")),
]

NUM_ENT_ALL_PAIRS = 5


def ent_all_pairs(relation) -> list[tuple[str, str]]:
    """The five most correlated attribute pairs, snapshot excluded,
    chosen with the attribute-cover strategy (Sec 6.4's winner)."""
    schema = relation.schema
    candidates = [
        pos
        for pos in range(schema.num_attributes)
        if schema.attribute_names[pos] != "snapshot"
    ]
    ranked = pair_correlations(relation, candidates)
    chosen = choose_pairs_by_cover(ranked, NUM_ENT_ALL_PAIRS)
    names = schema.attribute_names
    return [(names[a], names[b]) for a, b in chosen]


def build_particles_methods(
    store: ExperimentStore, num_snapshots: int
) -> tuple[object, dict[str, object]]:
    """(relation, methods) for one snapshot subset."""
    scale = store.scale
    relation = store.particles().snapshots(num_snapshots)
    # The paper builds a constant-size (1 GB) sample for every snapshot
    # subset; we mirror that with a fixed absolute row budget.
    sample_rows = min(scale.particles_sample_rows, relation.num_rows)
    methods: dict[str, object] = {
        "Uni": uniform_sample(relation, size=sample_rows, seed=31, name="Uni"),
        "Strat": stratified_sample(
            relation,
            ("density", "grp"),
            size=sample_rows,
            seed=37,
            name="Strat(den,grp)",
        ),
    }

    def build_no2d():
        return (
            SummaryBuilder(relation)
            .iterations(scale.solver_iterations)
            .name(f"EntNo2D-{num_snapshots}")
            .fit()
        )

    def build_all():
        return (
            SummaryBuilder(relation)
            .pairs(*ent_all_pairs(relation))
            .per_pair_budget(scale.particles_pair_budget)
            .iterations(scale.solver_iterations)
            .name(f"EntAll-{num_snapshots}")
            .fit()
        )

    methods["EntNo2D"] = Explorer.attach(
        store.summary(f"particles-no2d-{num_snapshots}", build_no2d)
    )
    methods["EntAll"] = Explorer.attach(
        store.summary(f"particles-all-{num_snapshots}", build_all)
    )
    return relation, methods


def run_fig7(store: ExperimentStore | None = None) -> ExperimentResult:
    """Regenerate Fig. 7: particles accuracy/runtime over snapshot subsets."""
    store = store or default_store()
    scale = store.scale

    result = ExperimentResult(
        "Fig 7: Particles — accuracy and runtime vs data size",
        "Average relative error and per-query latency for three 4D "
        "templates over 1/2/3 snapshots. Paper shape: sampling beats "
        "EntropyDB on heavy hitters (coarse bucketization); EntAll "
        "clearly beats EntNo2D on template 1; only the matching "
        "stratified sample does well on light-hitter template 1; "
        f"summary queries stay fast as data grows. ({scale.describe()})",
    )

    for kind, picker, count in (
        ("heavy", heavy_hitters, scale.num_heavy),
        ("light", light_hitters, scale.num_light),
    ):
        rows = []
        for num_snapshots in (1, 2, 3):
            relation, methods = build_particles_methods(store, num_snapshots)
            for label, attrs in TEMPLATES:
                workload = picker(relation, attrs, count)
                row = {"snapshots": num_snapshots, "template": label}
                for name, backend in methods.items():
                    run = run_workload(backend, name, workload, relation.schema)
                    row[f"{name}_err"] = run.mean_error
                    row[f"{name}_ms"] = run.mean_latency * 1e3
                rows.append(row)
        result.add_section(f"{kind} hitters", rows)
    return result


if __name__ == "__main__":
    print(run_fig7().to_text())
