"""Experiment configuration: scales, summary definitions (Fig. 4), and
a build cache.

Scale presets
-------------
``paper``
    The paper's statistic budgets (B = 3000 split as in Fig. 4, Fig. 2
    budgets 500/1000/2000, 1% samples, 30 solver iterations) on
    generated datasets scaled to laptop size.
``medium``
    Halfway point used by the nightly benchmark run: big enough for
    stable perf numbers, small enough for a scheduled CI runner.
``small``
    Everything shrunk ~4x for CI and quick runs.

Select with the ``REPRO_SCALE`` environment variable (default
``paper``).  Summaries are cached in-process and on disk (``.cache/``)
keyed by dataset, configuration, and scale, because Fig. 5, 6, and 8
share the same fitted models.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.api.builder import SummaryBuilder
from repro.api.store import SummaryStore
from repro.baselines import stratified_sample, uniform_sample
from repro.core.summary import EntropySummary
from repro.data.relation import Relation
from repro.datasets import generate_flights, generate_particles
from repro.errors import ReproError


@dataclass(frozen=True)
class Scale:
    """All knobs the experiment drivers read."""

    name: str
    flights_rows: int
    particles_rows_per_snapshot: int
    #: Per-pair bucket budget for the two-pair summaries (Ent1&2, Ent3&4).
    budget_two_pairs: int
    #: Per-pair bucket budget for Ent1&2&3.
    budget_three_pairs: int
    #: Fig. 2 heuristic budgets.
    fig2_budgets: tuple[int, ...]
    #: Per-pair budget for the particles EntAll summary.
    particles_pair_budget: int
    #: Absolute row budget of the particles samples (the paper uses a
    #: constant 1 GB sample for every snapshot subset, Sec 6.3).
    particles_sample_rows: int
    num_heavy: int
    num_light: int
    num_null: int
    sample_fraction: float
    solver_iterations: int

    def describe(self) -> str:
        return (
            f"scale={self.name}: flights n={self.flights_rows}, particles "
            f"n={self.particles_rows_per_snapshot}/snapshot, budgets "
            f"2-pair={self.budget_two_pairs} 3-pair={self.budget_three_pairs}, "
            f"samples={self.sample_fraction:.0%}, iterations={self.solver_iterations}"
        )


PAPER = Scale(
    name="paper",
    flights_rows=200_000,
    particles_rows_per_snapshot=100_000,
    budget_two_pairs=750,
    budget_three_pairs=333,
    fig2_budgets=(500, 1000, 2000),
    particles_pair_budget=100,
    particles_sample_rows=8000,
    num_heavy=100,
    num_light=100,
    num_null=200,
    sample_fraction=0.01,
    solver_iterations=30,
)

MEDIUM = Scale(
    name="medium",
    flights_rows=100_000,
    particles_rows_per_snapshot=50_000,
    budget_two_pairs=400,
    budget_three_pairs=180,
    fig2_budgets=(300, 600, 1200),
    particles_pair_budget=75,
    particles_sample_rows=5000,
    num_heavy=70,
    num_light=70,
    num_null=140,
    sample_fraction=0.01,
    solver_iterations=20,
)

SMALL = Scale(
    name="small",
    flights_rows=50_000,
    particles_rows_per_snapshot=25_000,
    budget_two_pairs=200,
    budget_three_pairs=90,
    fig2_budgets=(150, 300, 600),
    particles_pair_budget=50,
    particles_sample_rows=2500,
    num_heavy=40,
    num_light=40,
    num_null=80,
    sample_fraction=0.01,
    solver_iterations=15,
)

_SCALES = {"paper": PAPER, "medium": MEDIUM, "small": SMALL}


def active_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default ``paper``)."""
    name = os.environ.get("REPRO_SCALE", "paper").lower()
    try:
        return _SCALES[name]
    except KeyError:
        raise ReproError(
            f"unknown REPRO_SCALE={name!r}; choose from {sorted(_SCALES)}"
        ) from None


# ----------------------------------------------------------------------
# Fig. 4: the attribute pairs and summary configurations
# ----------------------------------------------------------------------

#: Pair ids → coarse attribute names (paper Sec 6.2: 1C, 2C, 3, 4C).
COARSE_PAIRS = {
    1: ("origin_state", "distance"),
    2: ("dest_state", "distance"),
    3: ("fl_time", "distance"),
    4: ("origin_state", "dest_state"),
}

#: Pair ids → fine attribute names (1F, 2F, 3, 4F).
FINE_PAIRS = {
    1: ("origin_city", "distance"),
    2: ("dest_city", "distance"),
    3: ("fl_time", "distance"),
    4: ("origin_city", "dest_city"),
}

#: The four MaxEnt methods of Fig. 4: name → pair ids.
MAXENT_METHODS = {
    "No2D": (),
    "Ent1&2": (1, 2),
    "Ent3&4": (3, 4),
    "Ent1&2&3": (1, 2, 3),
}


def summary_pairs(method: str, variant: str) -> list[tuple[str, str]]:
    """Attribute pairs of one Fig. 4 method on ``coarse`` or ``fine``."""
    table = COARSE_PAIRS if variant == "coarse" else FINE_PAIRS
    return [table[pair_id] for pair_id in MAXENT_METHODS[method]]


def method_pair_budget(method: str, scale: Scale) -> int:
    """Per-pair bucket budget of one Fig. 4 method."""
    count = len(MAXENT_METHODS[method])
    if count == 0:
        return 0
    return scale.budget_two_pairs if count <= 2 else scale.budget_three_pairs


# ----------------------------------------------------------------------
# Build cache
# ----------------------------------------------------------------------

class ExperimentStore:
    """Caches datasets, summaries, and samples for one scale.

    Summaries additionally persist to a versioned
    :class:`~repro.api.store.SummaryStore` under ``cache_dir`` so
    separate bench processes do not refit the same models.
    """

    def __init__(self, scale: Scale | None = None, cache_dir=None):
        self.scale = scale or active_scale()
        self.summary_store = SummaryStore(cache_dir) if cache_dir else None
        self._datasets: dict[str, object] = {}
        self._summaries: dict[str, EntropySummary] = {}
        self._samples: dict[str, object] = {}

    # -- datasets --------------------------------------------------------
    def flights(self):
        if "flights" not in self._datasets:
            self._datasets["flights"] = generate_flights(
                num_rows=self.scale.flights_rows, seed=7
            )
        return self._datasets["flights"]

    def particles(self):
        if "particles" not in self._datasets:
            self._datasets["particles"] = generate_particles(
                rows_per_snapshot=self.scale.particles_rows_per_snapshot, seed=11
            )
        return self._datasets["particles"]

    def flights_relation(self, variant: str) -> Relation:
        dataset = self.flights()
        if variant == "coarse":
            return dataset.coarse
        if variant == "fine":
            return dataset.fine
        raise ReproError(f"unknown flights variant {variant!r}")

    # -- summaries -------------------------------------------------------
    def summary(self, key: str, builder) -> EntropySummary:
        """Fetch a summary by cache key, building (or loading) on miss."""
        if key in self._summaries:
            return self._summaries[key]
        store_name = f"{self.scale.name}-{key}"
        if self.summary_store is not None and self.summary_store.has(store_name):
            summary = self.summary_store.load(store_name)
            self._summaries[key] = summary
            return summary
        summary = builder()
        self._summaries[key] = summary
        if self.summary_store is not None:
            self.summary_store.save(summary, store_name, tag=self.scale.name)
        return summary

    def flights_summary(self, method: str, variant: str) -> EntropySummary:
        """One of the Fig. 4 summaries on coarse or fine flights."""
        key = f"flights-{variant}-{method.replace('&', '_')}"
        relation = self.flights_relation(variant)
        pairs = summary_pairs(method, variant)

        def build():
            builder = (
                SummaryBuilder(relation)
                .iterations(self.scale.solver_iterations)
                .name(f"{method}-{variant}")
            )
            if pairs:
                builder.pairs(*pairs).per_pair_budget(
                    method_pair_budget(method, self.scale)
                )
            return builder.fit()

        return self.summary(key, build)

    # -- samples ---------------------------------------------------------
    def flights_uniform(self, variant: str):
        key = f"uni-{variant}"
        if key not in self._samples:
            self._samples[key] = uniform_sample(
                self.flights_relation(variant),
                fraction=self.scale.sample_fraction,
                seed=23,
                name="Uni",
            )
        return self._samples[key]

    def flights_stratified(self, pair_id: int, variant: str):
        key = f"strat{pair_id}-{variant}"
        if key not in self._samples:
            table = COARSE_PAIRS if variant == "coarse" else FINE_PAIRS
            self._samples[key] = stratified_sample(
                self.flights_relation(variant),
                table[pair_id],
                fraction=self.scale.sample_fraction,
                seed=23 + pair_id,
                name=f"Strat{pair_id}",
            )
        return self._samples[key]


_DEFAULT_STORE: ExperimentStore | None = None


def default_store() -> ExperimentStore:
    """Process-wide store at the active scale with on-disk caching."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None or _DEFAULT_STORE.scale != active_scale():
        cache_dir = Path(
            os.environ.get("REPRO_CACHE_DIR", Path.cwd() / ".cache" / "summaries")
        )
        cache_dir.mkdir(parents=True, exist_ok=True)
        _DEFAULT_STORE = ExperimentStore(active_scale(), cache_dir)
    return _DEFAULT_STORE
