"""Fig. 3: active-domain sizes of the evaluation datasets.

The paper reports the per-attribute distinct-value counts after
binning; this driver regenerates the table from our synthetic datasets
so the match with the paper's numbers (307/54/147/62/81 for flights;
58/52/21/21/21/2/3/3 for particles) is checked by data, not by
construction.
"""

from __future__ import annotations

from repro.evaluation.reporting import ExperimentResult
from repro.experiments.configs import ExperimentStore, default_store

#: The paper's Fig. 3 values, for the side-by-side comparison.
PAPER_FLIGHTS = {
    "fl_date": (307, 307),
    "origin": (54, 147),
    "dest": (54, 147),
    "fl_time": (62, 62),
    "distance": (81, 81),
}
PAPER_PARTICLES = {
    "density": 58,
    "mass": 52,
    "x": 21,
    "y": 21,
    "z": 21,
    "grp": 2,
    "type": 3,
    "snapshot": 3,
}


def run_fig3(store: ExperimentStore | None = None) -> ExperimentResult:
    """Regenerate Fig. 3: per-attribute active-domain sizes vs the paper's."""
    store = store or default_store()
    flights = store.flights()
    particles = store.particles()

    result = ExperimentResult(
        "Fig 3: active domain sizes",
        "Distinct values per attribute after binning, ours vs the paper.",
    )

    flight_rows = []
    coarse = flights.coarse.schema
    fine = flights.fine.schema
    pairs = [
        ("fl_date", "fl_date", "fl_date"),
        ("origin", "origin_state", "origin_city"),
        ("dest", "dest_state", "dest_city"),
        ("fl_time", "fl_time", "fl_time"),
        ("distance", "distance", "distance"),
    ]
    for label, coarse_name, fine_name in pairs:
        paper_coarse, paper_fine = PAPER_FLIGHTS[label]
        flight_rows.append(
            {
                "attribute": label,
                "coarse": coarse.domain(coarse_name).size,
                "paper_coarse": paper_coarse,
                "fine": fine.domain(fine_name).size,
                "paper_fine": paper_fine,
            }
        )
    flight_rows.append(
        {
            "attribute": "# possible tuples",
            "coarse": coarse.num_possible_tuples(),
            "paper_coarse": int(4.5e9),
            "fine": fine.num_possible_tuples(),
            "paper_fine": int(3.3e10),
        }
    )
    result.add_section("Flights", flight_rows)

    particle_rows = [
        {
            "attribute": name,
            "ours": particles.relation.schema.domain(name).size,
            "paper": PAPER_PARTICLES[name],
        }
        for name in PAPER_PARTICLES
    ]
    particle_rows.append(
        {
            "attribute": "# possible tuples",
            "ours": particles.relation.schema.num_possible_tuples(),
            "paper": int(5.0e8),
        }
    )
    result.add_section("Particles", particle_rows)
    return result


if __name__ == "__main__":
    print(run_fig3().to_text())
