"""Model-based variance validation (Sec 7 "variance calculations").

The paper leaves per-query error reporting as future work; we implement
the closed form (a counting query is Binomial(n, p) under the model)
and validate it two ways:

* **internal consistency** — Monte-Carlo over sampled possible worlds
  matches the closed-form mean and variance (tested in
  ``tests/test_worlds.py``);
* **external calibration** (this experiment) — on real workloads, what
  fraction of true counts fall inside the model's 95% interval?  The
  interval quantifies *sampling* uncertainty of the model, not *model
  bias*, so coverage should be high where the summary's statistics
  capture the data (heavy hitters under a covering summary) and
  degrade exactly where Fig. 5 shows bias (templates without a 2D
  statistic).
"""

from __future__ import annotations

from repro.evaluation.reporting import ExperimentResult
from repro.experiments.configs import ExperimentStore, default_store
from repro.workloads.selection_queries import heavy_hitters, light_hitters

TEMPLATES = [
    ("covered: ET & DT (pair 3)", ("fl_time", "distance")),
    ("covered: OB & DT (pair 1)", ("origin_state", "distance")),
    ("uncovered: OB & DB (pair 4)", ("origin_state", "dest_state")),
]


def run_variance(store: ExperimentStore | None = None) -> ExperimentResult:
    """Measure 95%-interval coverage of true counts under the model."""
    store = store or default_store()
    scale = store.scale
    relation = store.flights_relation("coarse")
    summary = store.flights_summary("Ent1&2&3", "coarse")

    result = ExperimentResult(
        "Variance calibration (Sec 7 extension)",
        "Fraction of true counts inside the model's 95% interval "
        "(Ent1&2&3, FlightsCoarse). Expected shape: high coverage on "
        "templates whose attributes carry a 2D statistic; low on the "
        f"uncovered pair-4 template (model bias). ({scale.describe()})",
    )

    rows = []
    for label, attrs in TEMPLATES:
        for kind, picker, count in (
            ("heavy", heavy_hitters, scale.num_heavy),
            ("light", light_hitters, scale.num_light),
        ):
            workload = picker(relation, attrs, count)
            covered = 0
            width_sum = 0.0
            for query in workload:
                estimate = summary.count(query.conjunction(relation.schema))
                low, high = estimate.ci95
                if low <= query.true_count <= high:
                    covered += 1
                width_sum += high - low
            rows.append(
                {
                    "template": label,
                    "workload": kind,
                    "coverage": covered / len(workload),
                    "mean_ci_width": width_sum / len(workload),
                }
            )
    result.add_section("95% interval coverage", rows)
    return result


if __name__ == "__main__":
    print(run_variance().to_text())
