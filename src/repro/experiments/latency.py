"""Sec 5 / 6.2 latency claims: query answering speed.

The paper reports that after the query-evaluation optimization,
EntropyDB answers queries in ~500 ms on average and always under 1 s
(on a 1e10-tuple domain, Java, 120 CPUs).  Our claim to reproduce is
the *shape*: summary query latency is interactive, independent of data
size, and competitive with scanning a 1% sample.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.explorer import Explorer
from repro.evaluation.reporting import ExperimentResult
from repro.experiments.configs import ExperimentStore, default_store
from repro.workloads.selection_queries import heavy_hitters, light_hitters


def measure_latencies(method, workload, schema) -> np.ndarray:
    """Per-query wall-clock seconds."""
    explorer = Explorer.attach(method)
    times = np.empty(len(workload))
    for index, query in enumerate(workload):
        conjunction = query.conjunction(schema)
        start = time.perf_counter()
        explorer.count(conjunction)
        times[index] = time.perf_counter() - start
    return times


def run_latency(store: ExperimentStore | None = None) -> ExperimentResult:
    """Measure per-query latency of the largest summary vs the 1% sample."""
    store = store or default_store()
    scale = store.scale
    relation = store.flights_relation("coarse")

    result = ExperimentResult(
        "Query latency (Sec 5 claims)",
        "Per-query latency of the Ent1&2&3 summary vs the 1% uniform "
        "sample on FlightsCoarse. Paper claim: summary answers average "
        "<0.5 s, max <1 s; ours should be far below both bounds and "
        f"stable across query types. ({scale.describe()})",
    )

    methods = {
        "Ent1&2&3": Explorer.attach(store.flights_summary("Ent1&2&3", "coarse")),
        "Uni": store.flights_uniform("coarse"),
    }
    rows = []
    for kind, picker in (("heavy", heavy_hitters), ("light", light_hitters)):
        for label, attrs in (
            ("2D (time,distance)", ("fl_time", "distance")),
            ("3D (dest,time,distance)", ("dest_state", "fl_time", "distance")),
        ):
            workload = picker(relation, attrs, scale.num_heavy)
            for name, backend in methods.items():
                times = measure_latencies(backend, workload, relation.schema)
                rows.append(
                    {
                        "workload": f"{kind} {label}",
                        "method": name,
                        "mean_ms": float(times.mean() * 1e3),
                        "p95_ms": float(np.percentile(times, 95) * 1e3),
                        "max_ms": float(times.max() * 1e3),
                    }
                )
    result.add_section("per-query latency", rows)
    return result


if __name__ == "__main__":
    print(run_latency().to_text())
