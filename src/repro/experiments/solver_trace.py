"""Solver behaviour (Sec 3.3 / 6.1): Mirror Descent convergence.

The paper runs 30 iterations or to error < 1e-6 and reports that model
computation dominates preprocessing.  This driver records the error
trace and per-phase timings for representative configurations.
"""

from __future__ import annotations

import time

from repro.core.polynomial import CompressedPolynomial
from repro.core.solver import MirrorDescentSolver
from repro.evaluation.reporting import ExperimentResult
from repro.experiments.configs import ExperimentStore, default_store
from repro.stats.selection import build_statistic_set


def run_solver_trace(store: ExperimentStore | None = None) -> ExperimentResult:
    """Record Mirror Descent convergence and cost per Fig. 4 configuration."""
    store = store or default_store()
    scale = store.scale
    relation = store.flights_relation("coarse")

    result = ExperimentResult(
        "Solver: Mirror Descent convergence",
        "Max relative constraint violation per sweep for the Fig. 4 "
        "configurations; the paper runs 30 sweeps (Sec 6.1). "
        f"({scale.describe()})",
    )

    from repro.experiments.configs import MAXENT_METHODS, method_pair_budget, summary_pairs

    rows = []
    traces = []
    for method in MAXENT_METHODS:
        pairs = summary_pairs(method, "coarse")
        start = time.perf_counter()
        statistic_set = build_statistic_set(
            relation,
            pairs=pairs or None,
            per_pair_budget=method_pair_budget(method, scale) or None,
        )
        stats_seconds = time.perf_counter() - start
        start = time.perf_counter()
        polynomial = CompressedPolynomial(statistic_set)
        build_seconds = time.perf_counter() - start
        solver = MirrorDescentSolver(
            polynomial, max_iterations=scale.solver_iterations
        )
        trace: list[float] = []
        params, report = solver.solve(
            callback=lambda iteration, error: trace.append(error)
        )
        rows.append(
            {
                "method": method,
                "statistics": statistic_set.num_statistics,
                "terms": polynomial.num_terms,
                "stats_s": stats_seconds,
                "poly_build_s": build_seconds,
                "solve_s": report.seconds,
                "iterations": report.iterations,
                "final_error": report.final_error,
            }
        )
        for iteration, error in enumerate(trace):
            traces.append(
                {"method": method, "iteration": iteration + 1, "max_error": error}
            )
    result.add_section("per-configuration cost", rows)
    result.add_section("error trace", traces)
    return result


if __name__ == "__main__":
    print(run_solver_trace().to_text())
