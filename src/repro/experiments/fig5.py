"""Fig. 5: per-template error difference against Ent1&2&3.

For three heavy-hitter and three light-hitter query templates over
FlightsCoarse, every method's mean relative error minus Ent1&2&3's
(bars above zero ⇒ Ent1&2&3 better).  Methods: the 1% uniform sample,
four stratified samples (over pairs 1–4), Ent1&2, and Ent3&4.
"""

from __future__ import annotations

from repro.api.explorer import Explorer
from repro.evaluation.harness import run_workload
from repro.evaluation.reporting import ExperimentResult
from repro.experiments.configs import ExperimentStore, default_store
from repro.workloads.selection_queries import heavy_hitters, light_hitters

#: (label, attribute names, workload kind) per the figure's panels.
HEAVY_TEMPLATES = [
    ("OB & DB (Pair 4)", ("origin_state", "dest_state")),
    ("DB & ET & DT (Pair 2&3)", ("dest_state", "fl_time", "distance")),
    ("FL & DB & DT (Pair 2)", ("fl_date", "dest_state", "distance")),
]
LIGHT_TEMPLATES = [
    ("ET & DT (Pair 3)", ("fl_time", "distance")),
    ("DB & DT (Pair 2)", ("dest_state", "distance")),
    ("FL & DB & DT (Pair 2)", ("fl_date", "dest_state", "distance")),
]

#: The figure's comparison methods (reference Ent1&2&3 excluded).
METHOD_NAMES = ("Uni", "Strat1", "Strat2", "Strat3", "Strat4", "Ent1&2", "Ent3&4")


def _fine_template(attrs: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(
        attr.replace("origin_state", "origin_city").replace(
            "dest_state", "dest_city"
        )
        for attr in attrs
    )


def build_methods(store: ExperimentStore, variant: str) -> dict[str, object]:
    """All Fig. 5 backends, including the Ent1&2&3 reference."""
    methods: dict[str, object] = {
        "Uni": store.flights_uniform(variant),
    }
    for pair_id in (1, 2, 3, 4):
        methods[f"Strat{pair_id}"] = store.flights_stratified(pair_id, variant)
    for name in ("Ent1&2", "Ent3&4", "Ent1&2&3"):
        methods[name] = Explorer.attach(store.flights_summary(name, variant))
    return methods


def run_fig5(
    store: ExperimentStore | None = None, variant: str = "coarse"
) -> ExperimentResult:
    """Regenerate Fig. 5: per-template error differences vs Ent1&2&3."""
    store = store or default_store()
    scale = store.scale
    relation = store.flights_relation(variant)
    methods = build_methods(store, variant)

    result = ExperimentResult(
        f"Fig 5: error difference vs Ent1&2&3 (Flights{variant.title()})",
        "Mean relative error of each method minus Ent1&2&3's on the same "
        "template (positive = Ent1&2&3 better). Paper shape: samples win "
        "on the pair-4 heavy template (no 2D stat covers it); Ent1&2&3 "
        "comparable or better elsewhere; EntropyDB beats uniform sampling "
        f"on all light-hitter templates. ({scale.describe()})",
    )

    for section, templates, picker, count in (
        ("heavy hitters", HEAVY_TEMPLATES, heavy_hitters, scale.num_heavy),
        ("light hitters", LIGHT_TEMPLATES, light_hitters, scale.num_light),
    ):
        rows = []
        for label, attrs in templates:
            if variant == "fine":
                attrs = _fine_template(attrs)
            workload = picker(relation, attrs, count)
            runs = {
                name: run_workload(backend, name, workload, relation.schema)
                for name, backend in methods.items()
            }
            reference = runs["Ent1&2&3"].mean_error
            row = {"template": label, "Ent1&2&3_error": reference}
            for name in METHOD_NAMES:
                row[name] = runs[name].mean_error - reference
            rows.append(row)
        result.add_section(section, rows)
    return result


if __name__ == "__main__":
    print(run_fig5().to_text())
