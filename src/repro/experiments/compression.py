"""Sec 4.1 / 4.3 compression claims.

Two quantities the paper reports:

* compressed vs uncompressed polynomial size — e.g. "for a budget of
  2,000, the uncompressed polynomial has 4.4 million terms while the
  compressed polynomial has only 9,000 terms" (end of Sec 4.3);
* summary storage vs 1% sample storage (Sec 6.2: the largest summary's
  variables fit in ~600 KB vs ~100 MB for samples in Postgres).
"""

from __future__ import annotations

from repro.evaluation.reporting import ExperimentResult
from repro.experiments.configs import ExperimentStore, default_store
from repro.experiments.fig2 import build_heuristic_summary
from repro.datasets.flights import flights_restricted


def run_compression(store: ExperimentStore | None = None) -> ExperimentResult:
    """Measure compressed vs uncompressed polynomial sizes and storage."""
    store = store or default_store()
    scale = store.scale
    relation = flights_restricted(store.flights())

    result = ExperimentResult(
        "Compression: polynomial size vs budget (Sec 4.1/4.3)",
        "COMPOSITE statistics on (fl_time, distance); compressed term "
        "count vs the uncompressed monomial count |Tup|. Paper shape: "
        "orders-of-magnitude reduction at every budget. "
        f"({scale.describe()})",
    )

    rows = []
    for budget in scale.fig2_budgets:
        summary = store.summary(
            f"fig2-composite-{budget}",
            lambda b=budget: build_heuristic_summary(
                relation, "composite", b, scale.solver_iterations
            ),
        )
        report = summary.size_report()
        rows.append(
            {
                "budget": budget,
                "compressed_terms": report["num_terms"],
                "uncompressed_monomials": report["num_uncompressed_monomials"],
                "ratio": report["num_uncompressed_monomials"]
                / max(report["num_terms"], 1),
                "summary_bytes": report["total_bytes"],
            }
        )
    result.add_section("polynomial size on restricted flights", rows)

    # Full summaries vs 1% samples (storage).
    size_rows = []
    for variant in ("coarse", "fine"):
        summary = store.flights_summary("Ent1&2&3", variant)
        sample = store.flights_uniform(variant)
        report = summary.size_report()
        size_rows.append(
            {
                "dataset": f"Flights{variant.title()}",
                "summary_param_bytes": report["parameter_bytes"],
                "summary_total_bytes": report["total_bytes"],
                "sample_bytes": sample.storage_bytes(),
                "sample_rows": sample.num_rows,
            }
        )
    result.add_section("summary vs 1% sample storage", size_rows)

    # Ablation (DESIGN.md §3): our connected-component factorization vs
    # a literal Theorem 4.1 enumeration.  Ent3&4's two pairs share no
    # attribute, so the literal form multiplies their term counts.
    ablation_rows = []
    for method in ("Ent1&2", "Ent3&4", "Ent1&2&3"):
        summary = store.flights_summary(method, "coarse")
        report = summary.size_report()
        ablation_rows.append(
            {
                "summary": method,
                "components": report["num_components"],
                "terms_factored": report["num_terms"],
                "terms_literal_thm41": report[
                    "num_terms_without_component_factoring"
                ],
            }
        )
    result.add_section("component factorization ablation", ablation_rows)
    return result


if __name__ == "__main__":
    print(run_compression().to_text())
