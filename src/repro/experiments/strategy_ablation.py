"""Pair-selection strategy ablation (Sec 4.3 / 6.4).

The paper concludes that "considering attribute cover achieves more
precise query results for the same budget than the alternative"
(choosing pairs purely by correlation).  Fig. 8 shows this indirectly
through Ent1&2 vs Ent3&4; this ablation runs the two automatic
strategies head-to-head: same relation, same total budget, same
heuristic — only the pair-choice rule differs.
"""

from __future__ import annotations

import itertools

from repro.api.builder import SummaryBuilder
from repro.api.explorer import Explorer
from repro.evaluation.harness import run_workload
from repro.evaluation.metrics import f_measure
from repro.evaluation.reporting import ExperimentResult
from repro.experiments.configs import ExperimentStore, default_store
from repro.workloads.selection_queries import (
    heavy_hitters,
    light_hitters,
    nonexistent_values,
)

_CORE = ("origin_state", "dest_state", "fl_time", "distance")


def run_strategy_ablation(
    store: ExperimentStore | None = None, num_pairs: int = 2
) -> ExperimentResult:
    """Head-to-head correlation-first vs attribute-cover pair selection."""
    store = store or default_store()
    scale = store.scale
    relation = store.flights_relation("coarse")
    budget = scale.budget_two_pairs * num_pairs

    result = ExperimentResult(
        "Pair-selection strategy ablation (Sec 6.4)",
        f"Automatic selection of {num_pairs} attribute pairs under a "
        f"total budget of {budget}: correlation-first vs attribute-cover. "
        "Paper conclusion: cover is more precise for the same budget. "
        f"({scale.describe()})",
    )

    summaries = {}
    for strategy in ("correlation", "cover"):
        key = f"ablation-{strategy}-{num_pairs}"
        summaries[strategy] = store.summary(
            key,
            lambda s=strategy: (
                SummaryBuilder(relation)
                .budget(budget)
                .num_pairs(num_pairs)
                .strategy(s)
                .exclude("fl_date")
                .iterations(scale.solver_iterations)
                .name(f"{s}-{num_pairs}")
                .fit()
            ),
        )

    pair_rows = []
    for strategy, summary in summaries.items():
        names = relation.schema.attribute_names
        pairs = sorted(
            {
                "+".join(names[pos] for pos in statistic.positions)
                for statistic in summary.statistic_set.multi_dim
            }
        )
        pair_rows.append({"strategy": strategy, "chosen_pairs": ", ".join(pairs)})
    result.add_section("chosen pairs", pair_rows)

    templates = [tuple(t) for t in itertools.combinations(_CORE, 2)]
    per_template: list[dict] = []
    aggregate_rows = []
    for strategy, summary in summaries.items():
        backend = Explorer.attach(summary)
        rounded = backend.rounded()
        errors = []
        f_scores = []
        for template in templates:
            heavy = heavy_hitters(relation, template, scale.num_heavy)
            light = light_hitters(relation, template, scale.num_light)
            null = nonexistent_values(
                relation, template, scale.num_null, seed=47, allow_fewer=True
            )
            error = run_workload(
                backend, strategy, heavy, relation.schema
            ).mean_error
            errors.append(error)
            light_run = run_workload(rounded, strategy, light, relation.schema)
            null_run = run_workload(rounded, strategy, null, relation.schema)
            f_scores.append(f_measure(light_run.estimates, null_run.estimates))
            per_template.append(
                {
                    "strategy": strategy,
                    "template": " & ".join(template),
                    "heavy_error": error,
                }
            )
        aggregate_rows.append(
            {
                "strategy": strategy,
                "heavy_error": sum(errors) / len(errors),
                "f_measure": sum(f_scores) / len(f_scores),
            }
        )
    result.add_section("per-template heavy-hitter error", per_template)
    result.add_section("accuracy over six 2-attribute templates", aggregate_rows)
    return result


if __name__ == "__main__":
    print(run_strategy_ablation().to_text())
