"""Experiment drivers, one per table/figure of the paper's evaluation.

Each ``run_*`` function returns an
:class:`~repro.evaluation.reporting.ExperimentResult`; the
``benchmarks/`` directory wraps them in pytest-benchmark targets.
"""

from repro.experiments.compression import run_compression
from repro.experiments.configs import (
    COARSE_PAIRS,
    FINE_PAIRS,
    MAXENT_METHODS,
    PAPER,
    SMALL,
    ExperimentStore,
    Scale,
    active_scale,
    default_store,
)
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.latency import run_latency
from repro.experiments.solver_trace import run_solver_trace
from repro.experiments.strategy_ablation import run_strategy_ablation
from repro.experiments.variance import run_variance

__all__ = [
    "COARSE_PAIRS",
    "FINE_PAIRS",
    "MAXENT_METHODS",
    "PAPER",
    "SMALL",
    "ExperimentStore",
    "Scale",
    "active_scale",
    "default_store",
    "run_compression",
    "run_fig2",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_latency",
    "run_solver_trace",
    "run_strategy_ablation",
    "run_variance",
]
