"""Fig. 6: F measure over light hitters and null values.

Fifteen 2- and 3-dimensional point-query templates (all pairs and
triples of origin/dest/time/distance plus five date-including
templates); each method's estimates over light hitters and nulls are
scored with the F measure of "value exists".  Run on both FlightsCoarse
and FlightsFine.
"""

from __future__ import annotations

import itertools

from repro.evaluation.harness import run_workload
from repro.evaluation.metrics import f_measure
from repro.evaluation.reporting import ExperimentResult
from repro.experiments.configs import ExperimentStore, default_store
from repro.experiments.fig5 import build_methods
from repro.workloads.selection_queries import light_hitters, nonexistent_values

_CORE_COARSE = ("origin_state", "dest_state", "fl_time", "distance")
_DATE_TEMPLATES = [
    ("fl_date", "fl_time", "distance"),
    ("fl_date", "origin_state", "dest_state"),
    ("fl_date", "origin_state", "distance"),
    ("fl_date", "dest_state", "distance"),
    ("fl_date", "origin_state", "fl_time"),
]

ALL_METHODS = (
    "Uni", "Strat1", "Strat2", "Strat3", "Strat4",
    "Ent1&2", "Ent3&4", "Ent1&2&3",
)


def fig6_templates(variant: str) -> list[tuple[str, ...]]:
    """The fifteen templates: 6 pairs + 4 triples of the core
    attributes + 5 date triples."""
    core = _CORE_COARSE
    templates = [tuple(t) for t in itertools.combinations(core, 2)]
    templates += [tuple(t) for t in itertools.combinations(core, 3)]
    templates += [tuple(t) for t in _DATE_TEMPLATES]
    if variant == "fine":
        templates = [
            tuple(
                attr.replace("origin_state", "origin_city").replace(
                    "dest_state", "dest_city"
                )
                for attr in template
            )
            for template in templates
        ]
    return templates


def run_fig6(store: ExperimentStore | None = None) -> ExperimentResult:
    """Regenerate Fig. 6: average F measure per method, coarse and fine."""
    store = store or default_store()
    scale = store.scale

    result = ExperimentResult(
        "Fig 6: F measure (light hitters vs null values)",
        "Average F measure over fifteen 2-/3-dimensional templates. Paper "
        "shape: Ent1&2 and Ent3&4 ~0.72 beat all stratified samples; "
        f"Ent1&2&3 close behind; uniform lowest. ({scale.describe()})",
    )

    for variant in ("coarse", "fine"):
        relation = store.flights_relation(variant)
        methods = build_methods(store, variant)
        # F-measure positivity tests use the paper's rounding.
        for name in ("Ent1&2", "Ent3&4", "Ent1&2&3"):
            methods[name] = methods[name].rounded()
        per_method: dict[str, list[float]] = {name: [] for name in ALL_METHODS}
        for template in fig6_templates(variant):
            light = light_hitters(relation, template, scale.num_light)
            null = nonexistent_values(
                relation, template, scale.num_null, seed=29, allow_fewer=True
            )
            for name in ALL_METHODS:
                backend = methods[name]
                light_run = run_workload(backend, name, light, relation.schema)
                null_run = run_workload(backend, name, null, relation.schema)
                per_method[name].append(
                    f_measure(light_run.estimates, null_run.estimates)
                )
        rows = [
            {
                "method": name,
                "f_measure": sum(scores) / len(scores),
                "templates": len(scores),
            }
            for name, scores in per_method.items()
        ]
        result.add_section(f"Flights{variant.title()}", rows)
    return result


if __name__ == "__main__":
    print(run_fig6().to_text())
