"""Fig. 8: choosing 2D statistics — breadth vs depth.

Compares the four Fig. 4 MaxEnt configurations (No2D, Ent1&2, Ent3&4,
Ent1&2&3) on six two-attribute templates over origin / dest / time /
distance: (a) average heavy-hitter error, (b) F measure over light
hitters + nulls.  Run on both FlightsCoarse and FlightsFine.
"""

from __future__ import annotations

import itertools

from repro.evaluation.harness import run_workload
from repro.evaluation.metrics import f_measure
from repro.evaluation.reporting import ExperimentResult
from repro.api.explorer import Explorer
from repro.experiments.configs import (
    ExperimentStore,
    MAXENT_METHODS,
    default_store,
)
from repro.workloads.selection_queries import (
    heavy_hitters,
    light_hitters,
    nonexistent_values,
)

_CORE = ("origin_state", "dest_state", "fl_time", "distance")


def fig8_templates(variant: str) -> list[tuple[str, str]]:
    """All six attribute pairs of the pair-1..4 cover."""
    core = _CORE
    if variant == "fine":
        core = tuple(
            attr.replace("origin_state", "origin_city").replace(
                "dest_state", "dest_city"
            )
            for attr in core
        )
    return [tuple(t) for t in itertools.combinations(core, 2)]


def run_fig8(store: ExperimentStore | None = None) -> ExperimentResult:
    """Regenerate Fig. 8: MaxEnt-method comparison (breadth vs depth)."""
    store = store or default_store()
    scale = store.scale

    result = ExperimentResult(
        "Fig 8: statistic selection (breadth vs depth)",
        "Heavy-hitter error and F measure of the four MaxEnt methods over "
        "six 2-attribute templates. Paper shape: Ent1&2&3 (more pairs, "
        "fewer buckets) best on heavy hitters; Ent3&4 (covers all "
        "attributes, more buckets) best F measure; No2D worst. "
        f"({scale.describe()})",
    )

    for variant in ("coarse", "fine"):
        relation = store.flights_relation(variant)
        backends = {
            name: Explorer.attach(store.flights_summary(name, variant))
            for name in MAXENT_METHODS
        }
        rounded = {
            name: explorer.rounded() for name, explorer in backends.items()
        }
        errors: dict[str, list[float]] = {name: [] for name in MAXENT_METHODS}
        f_scores: dict[str, list[float]] = {name: [] for name in MAXENT_METHODS}
        for template in fig8_templates(variant):
            heavy = heavy_hitters(relation, template, scale.num_heavy)
            light = light_hitters(relation, template, scale.num_light)
            null = nonexistent_values(
                relation, template, scale.num_null, seed=41, allow_fewer=True
            )
            for name in MAXENT_METHODS:
                heavy_run = run_workload(
                    backends[name], name, heavy, relation.schema
                )
                errors[name].append(heavy_run.mean_error)
                light_run = run_workload(
                    rounded[name], name, light, relation.schema
                )
                null_run = run_workload(
                    rounded[name], name, null, relation.schema
                )
                f_scores[name].append(
                    f_measure(light_run.estimates, null_run.estimates)
                )
        rows = [
            {
                "method": name,
                "heavy_error": sum(errors[name]) / len(errors[name]),
                "f_measure": sum(f_scores[name]) / len(f_scores[name]),
            }
            for name in MAXENT_METHODS
        ]
        result.add_section(f"Flights{variant.title()}", rows)
    return result


if __name__ == "__main__":
    print(run_fig8().to_text())
