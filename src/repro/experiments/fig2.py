"""Fig. 2(b): statistic-selection heuristics vs budget.

Reproduces the Sec 4.3 experiment: on flights restricted to
``(fl_date, fl_time, distance)``, gather 2D statistics over
``(fl_time, distance)`` with each heuristic (ZERO / LARGE / COMPOSITE)
at each budget, fit the MaxEnt model, and measure the average error of
the point-query template

    SELECT fl_time, distance, COUNT(*) FROM Flights
    WHERE fl_time = x AND distance = y

on heavy hitters, nonexistent values, and light hitters.
"""

from __future__ import annotations

from repro.api.explorer import Explorer
from repro.core.summary import EntropySummary
from repro.evaluation.harness import run_workload
from repro.evaluation.reporting import ExperimentResult
from repro.experiments.configs import ExperimentStore, default_store
from repro.datasets.flights import flights_restricted
from repro.stats.heuristics import select_pair_statistics
from repro.stats.statistic import StatisticSet
from repro.workloads.selection_queries import standard_workloads

PAIR = ("fl_time", "distance")
HEURISTICS = ("zero", "large", "composite")


def build_heuristic_summary(
    relation, heuristic: str, budget: int, iterations: int
) -> EntropySummary:
    """Summary with 2D statistics from one heuristic on the pair."""
    multi_dim = select_pair_statistics(
        relation, PAIR[0], PAIR[1], budget, heuristic, seed=3
    )
    statistic_set = StatisticSet.from_relation(relation, multi_dim)
    return EntropySummary.from_statistics(
        statistic_set,
        max_iterations=iterations,
        name=f"{heuristic}-{budget}",
    )


def run_fig2(store: ExperimentStore | None = None) -> ExperimentResult:
    """Regenerate Fig. 2(b): heuristic error vs budget on (fl_time, distance)."""
    store = store or default_store()
    scale = store.scale
    relation = flights_restricted(store.flights())
    workloads = standard_workloads(
        relation,
        PAIR,
        num_heavy=scale.num_heavy,
        num_light=scale.num_light,
        num_null=scale.num_null,
        seed=5,
    )

    result = ExperimentResult(
        "Fig 2(b): heuristic accuracy vs budget",
        "Average relative error of point queries on (fl_time, distance) "
        f"for each heuristic and budget ({scale.describe()}). Paper shape: "
        "COMPOSITE best overall; ZERO wins on nonexistent values; "
        "LARGE/COMPOSITE near-zero error on heavy hitters.",
    )
    rows = []
    for budget in scale.fig2_budgets:
        for heuristic in HEURISTICS:
            key = f"fig2-{heuristic}-{budget}"
            summary = store.summary(
                key,
                lambda h=heuristic, b=budget: build_heuristic_summary(
                    relation, h, b, scale.solver_iterations
                ),
            )
            backend = Explorer.attach(summary, rounded=True)
            row = {"budget": budget, "heuristic": heuristic}
            for kind, workload in workloads.items():
                run = run_workload(backend, heuristic, workload, relation.schema)
                row[f"{kind}_error"] = run.mean_error
            row["terms"] = summary.polynomial.num_terms
            rows.append(row)
    result.add_section("error by heuristic and budget", rows)
    return result


if __name__ == "__main__":
    print(run_fig2().to_text())
