"""Plain-text table rendering for experiment outputs.

Every experiment driver returns rows of dicts; these helpers format
them as aligned ASCII (for terminal / bench logs) or Markdown (for
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def ascii_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Align rows of dicts into a fixed-width text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_stringify(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in table))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in table
    ]
    return "\n".join([header, separator, *body])


def markdown_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """The same rows as a Markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = [
        "| " + " | ".join(_stringify(row.get(column, "")) for column in columns) + " |"
        for row in rows
    ]
    return "\n".join([header, separator, *body])


class ExperimentResult:
    """Named result of one experiment: free-form rows plus context."""

    def __init__(self, name: str, description: str):
        self.name = name
        self.description = description
        self.sections: list[tuple[str, list[dict]]] = []

    def add_section(self, title: str, rows: list[dict]) -> None:
        self.sections.append((title, rows))

    def rows(self, title: str) -> list[dict]:
        for section_title, rows in self.sections:
            if section_title == title:
                return rows
        raise KeyError(f"no section {title!r} in {self.name}")

    def to_text(self) -> str:
        parts = [f"== {self.name} ==", self.description, ""]
        for title, rows in self.sections:
            parts.append(f"-- {title} --")
            parts.append(ascii_table(rows))
            parts.append("")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        parts = [f"### {self.name}", "", self.description, ""]
        for title, rows in self.sections:
            parts.append(f"**{title}**")
            parts.append("")
            parts.append(markdown_table(rows))
            parts.append("")
        return "\n".join(parts)

    def __repr__(self):
        return f"ExperimentResult({self.name!r}, sections={len(self.sections)})"
