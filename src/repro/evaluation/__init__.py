"""Evaluation utilities: metrics, harness, reporting."""

from repro.evaluation.harness import (
    MethodRun,
    error_difference_table,
    f_measure_over,
    predicate_for_labels,
    run_methods,
    run_workload,
)
from repro.evaluation.metrics import (
    f_measure,
    mean_relative_error,
    precision_recall,
    relative_error,
)
from repro.evaluation.reporting import (
    ExperimentResult,
    ascii_table,
    markdown_table,
)

__all__ = [
    "ExperimentResult",
    "MethodRun",
    "ascii_table",
    "error_difference_table",
    "f_measure",
    "f_measure_over",
    "markdown_table",
    "mean_relative_error",
    "precision_recall",
    "predicate_for_labels",
    "relative_error",
    "run_methods",
    "run_workload",
]
