"""Shared experiment harness: run workloads against methods, time them,
and aggregate metrics.

A *method* is anything :meth:`Explorer.attach` accepts — an
:class:`~repro.api.Explorer` session, a :class:`~repro.api.Backend`, a
relation, or a summary.  The harness opens a session per run and pushes
the whole workload through ``count_many`` — which plans every predicate
through the shared query planner (:mod:`repro.plan`) and executes the
batch via the same batched executor the Explorer and the CLI use (one
vectorized inference pass on model backends, shard pruning decided once
per query) — then computes the Sec 6.2 metrics.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.api.explorer import Explorer
from repro.evaluation.metrics import f_measure, mean_relative_error
from repro.stats.predicates import Conjunction
from repro.workloads.selection_queries import Workload


class MethodRun:
    """Per-method results for one workload."""

    __slots__ = ("method", "workload_kind", "estimates", "true_counts", "seconds")

    def __init__(self, method, workload_kind, estimates, true_counts, seconds):
        self.method = method
        self.workload_kind = workload_kind
        self.estimates = estimates
        self.true_counts = true_counts
        self.seconds = seconds

    @property
    def mean_error(self) -> float:
        return mean_relative_error(self.true_counts, self.estimates)

    @property
    def mean_latency(self) -> float:
        return self.seconds / max(len(self.estimates), 1)

    def __repr__(self):
        return (
            f"MethodRun({self.method!r}, {self.workload_kind!r}, "
            f"err={self.mean_error:.3f}, {self.mean_latency*1e3:.2f} ms/q)"
        )


def run_workload(method, name: str, workload: Workload, schema) -> MethodRun:
    """Execute every point query of a workload against a method.

    The queries run through :meth:`Explorer.count_many`, so model
    backends answer the whole workload in one vectorized pass.
    """
    explorer = Explorer.attach(method)
    predicates = [query.conjunction(schema) for query in workload]
    true_counts = [query.true_count for query in workload]
    start = time.perf_counter()
    estimates = explorer.count_many(predicates)
    seconds = time.perf_counter() - start
    return MethodRun(name, workload.kind, estimates, true_counts, seconds)


def run_methods(
    methods: dict[str, object],
    workload: Workload,
    schema,
) -> dict[str, MethodRun]:
    """Run one workload against every named method."""
    return {
        name: run_workload(method, name, workload, schema)
        for name, method in methods.items()
    }


def f_measure_over(
    method,
    light: Workload,
    null: Workload,
    schema,
) -> float:
    """F measure of one method over a light + null workload pair."""
    explorer = Explorer.attach(method)
    light_estimates = explorer.count_many(
        [query.conjunction(schema) for query in light]
    )
    null_estimates = explorer.count_many(
        [query.conjunction(schema) for query in null]
    )
    return f_measure(light_estimates, null_estimates)


def error_difference_table(
    runs: dict[str, "MethodRun"], reference: str
) -> dict[str, float]:
    """Fig. 5's quantity: mean error of each method minus the
    reference's mean error (positive ⇒ reference is better)."""
    reference_error = runs[reference].mean_error
    return {
        name: run.mean_error - reference_error
        for name, run in runs.items()
        if name != reference
    }


def predicate_for_labels(schema, assignments: Sequence[tuple]) -> Conjunction:
    """Build a conjunction from (attribute, label) pairs — convenience
    for experiment drivers."""
    from repro.stats.predicates import RangePredicate

    mapping = {}
    for attr, label in assignments:
        pos = schema.position(attr)
        index = schema.domain(pos).index_of(label)
        mapping[pos] = RangePredicate.point(index)
    return Conjunction(schema, mapping)
