"""Accuracy metrics of the evaluation (Sec 6.2).

* relative error ``|true − est| / (true + est)`` for heavy/light
  hitters (symmetric, bounded in [0, 1] for non-negative inputs);
* the F measure over light hitters vs. null values, scoring how well a
  method distinguishes *rare* from *nonexistent*:

      precision = |{est > 0 : t ∈ light}| / |{est > 0 : t ∈ light ∪ null}|
      recall    = |{est > 0 : t ∈ light}| / |light|
      F         = 2·precision·recall / (precision + recall)

Estimates are rounded the paper's way (≥ 0.5 rounds up) before the
positivity test.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.inference import round_half_up
from repro.errors import ReproError


def relative_error(true_count: float, estimate: float) -> float:
    """``|true − est| / (true + est)``; 0 when both are 0."""
    if true_count < 0:
        raise ReproError("true counts must be non-negative")
    estimate = max(estimate, 0.0)
    denominator = true_count + estimate
    if denominator == 0:
        return 0.0
    return abs(true_count - estimate) / denominator


def mean_relative_error(
    true_counts: Sequence[float], estimates: Sequence[float]
) -> float:
    """Average relative error over a workload."""
    if len(true_counts) != len(estimates):
        raise ReproError("need one estimate per true count")
    if not true_counts:
        raise ReproError("empty workload")
    return sum(
        relative_error(true, est) for true, est in zip(true_counts, estimates)
    ) / len(true_counts)


def precision_recall(
    light_estimates: Sequence[float], null_estimates: Sequence[float]
) -> tuple[float, float]:
    """Precision and recall of 'value exists' over light + null items."""
    if not light_estimates:
        raise ReproError("need at least one light-hitter estimate")
    positive_light = sum(
        1 for est in light_estimates if round_half_up(est) > 0
    )
    positive_null = sum(1 for est in null_estimates if round_half_up(est) > 0)
    total_positive = positive_light + positive_null
    precision = positive_light / total_positive if total_positive else 0.0
    recall = positive_light / len(light_estimates)
    return precision, recall


def f_measure(
    light_estimates: Sequence[float], null_estimates: Sequence[float]
) -> float:
    """``2·p·r / (p + r)`` (0 when both are 0)."""
    precision, recall = precision_recall(light_estimates, null_estimates)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
