"""The contiguous shard arena: one numpy pass over every live shard.

:class:`~repro.core.sharding.ShardedSummary` answers a query by
evaluating each shard's compressed polynomial and merging.  The
per-shard walk is pure Python: S polynomial evaluations, each looping
components and positions, with the shard fan-out paying thread-pool
overhead per batch.  For the serving layer's hot path (many small
batches of scalar counts) that interpreter time dominates the actual
math.

:class:`ShardArena` restructures the *fitted* shard parameters once —
at load, reload, or publish time — into contiguous float64 arrays:

* ``alphas[pos]`` — every shard's 1D variables for an attribute,
  stacked ``(S, size)``;
* one flat **term table** across all shards and components: per
  attribute, the term rows it constrains with their inclusive range
  bounds and owning shard (``term_rows``/``shard_of``/``lo``/``hi``);
* per-term delta products and per-component row offsets, so component
  sums are one ``np.add.reduceat``.

A batch of B queries then evaluates COUNT across **all** shards in a
single set of matrix operations: masked prefix-sum matrices of shape
``(S, B, size + 1)`` per constrained attribute (the shard attribute's
owned ranges are folded into the same mask, which makes shard pruning
implicit — a pruned shard's masked polynomial is exactly zero), one
gather + multiply for all term products, one ``reduceat`` for all
component values.  GROUP BY and SUM reuse the pass with the gradient
trick of :meth:`CompressedPolynomial.attribute_gradient`, batched over
shards and group combinations at once.

Results are cached on the canonical mask key (the serve layer's
canonical predicate keys collapse to identical masks), bounded like
:class:`~repro.core.inference.InferenceEngine`'s cache.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import QueryError

#: Rows evaluated per kernel pass; bounds the ``(S, B, size+1)`` prefix
#: matrices while keeping each pass big enough to amortize dispatch.
CHUNK = 256

#: Bounded result-cache entries (cleared wholesale when full, matching
#: the inference engine's policy).
CACHE_SIZE = 8192


class ShardArena:
    """Contiguous evaluation kernel over one :class:`ShardedSummary`'s
    fitted shards.  Rebuild (``ShardArena(summary)``) whenever the shard
    set changes — the sharding layer does this on load, hot reload, and
    delta-refresh publish."""

    def __init__(self, summary):
        shards = summary.shards
        schema = summary.schema
        self.schema = schema
        self.sizes = schema.sizes()
        self.num_shards = len(shards)
        self.by_pos = summary.by_position
        self.total = summary.total

        S = self.num_shards
        # -- stacked 1D parameters ------------------------------------
        self.alphas = [
            np.ascontiguousarray(
                np.stack([shard.params.alphas[pos] for shard in shards]),
                dtype=np.float64,
            )
            for pos in range(len(self.sizes))
        ]
        self.totals = np.asarray(
            [float(shard.total) for shard in shards], dtype=np.float64
        )
        self.fulls = np.asarray(
            [float(shard.engine.partition_value) for shard in shards],
            dtype=np.float64,
        )
        self.scales = self.totals / self.fulls

        # -- owned ranges of the shard attribute ----------------------
        ranges = summary.owned_ranges
        if ranges is None:
            self.owned = None
        else:
            size = self.sizes[self.by_pos]
            owned = np.zeros((S, size), dtype=bool)
            for index, (low, high) in enumerate(ranges):
                owned[index, low : high + 1] = True
            self.owned = owned

        # -- flattened term table -------------------------------------
        comp_sizes: list[int] = []
        comp_shard: list[int] = []
        self.comps_of_shard: list[list[int]] = [[] for _ in range(S)]
        self.free_of_shard: list[tuple[int, ...]] = []
        dprods: list[np.ndarray] = []
        entries: dict[int, list] = {}
        self.comp_of_shard_pos: list[dict[int, int]] = [{} for _ in range(S)]
        # Component-contiguous view of the same table: every term of a
        # component constrains the same positions and sits in one row
        # range, so the hot COUNT pass multiplies contiguous slices
        # in place instead of gather/scattering the full (T, B) matrix
        # per attribute.
        self.comp_table: list[tuple[int, int, int, dict[int, tuple]]] = []
        term_base = 0
        for s, shard in enumerate(shards):
            polynomial = shard.polynomial
            self.free_of_shard.append(tuple(polynomial.free_positions))
            for component in polynomial.components:
                k = len(comp_sizes)
                comp_sizes.append(component.num_terms)
                comp_shard.append(s)
                self.comps_of_shard[s].append(k)
                dprods.append(component.delta_products(shard.params.deltas))
                rows = np.arange(
                    term_base, term_base + component.num_terms, dtype=np.int64
                )
                bounds: dict[int, tuple] = {}
                for pos in component.positions:
                    self.comp_of_shard_pos[s][pos] = k
                    entries.setdefault(pos, []).append(
                        (rows, s, component.lo[pos], component.hi[pos])
                    )
                    bounds[pos] = (
                        component.lo[pos].astype(np.int64),
                        component.hi[pos].astype(np.int64),
                    )
                self.comp_table.append(
                    (term_base, term_base + component.num_terms, s, bounds)
                )
                term_base += component.num_terms
        self.num_terms = term_base
        self.comp_shard = np.asarray(comp_shard, dtype=np.int64)
        self.comp_start = np.concatenate(
            [[0], np.cumsum(comp_sizes)]
        ).astype(np.int64)
        self.dprod = (
            np.concatenate(dprods)
            if dprods
            else np.empty(0, dtype=np.float64)
        )
        # Per attribute: every (term row, shard, lo, hi) it constrains.
        self.entries: dict[int, tuple] = {}
        for pos, pieces in entries.items():
            self.entries[pos] = (
                np.concatenate([rows for rows, _, _, _ in pieces]),
                np.concatenate(
                    [np.full(rows.shape[0], s, dtype=np.int64) for rows, s, _, _ in pieces]
                ),
                np.concatenate([lo for _, _, lo, _ in pieces]).astype(np.int64),
                np.concatenate([hi for _, _, _, hi in pieces]).astype(np.int64),
            )

        self._cache: dict[tuple, tuple[float, float]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Kernel passes
    # ------------------------------------------------------------------
    def _prefixes(
        self,
        masks_list: Sequence[Mapping[int, np.ndarray]],
        skip_owned: bool = False,
    ) -> dict[int, np.ndarray]:
        """Masked prefix-sum matrices for one batch of mask dicts.

        Returns ``pos -> (S, size+1, B)`` for constrained attributes and
        ``pos -> (S, size+1, 1)`` (batch-shared) for unconstrained ones
        — value-major, so the term passes gather contiguous ``(rows, B)``
        blocks along the leading axis.  Unless ``skip_owned``, the shard
        attribute additionally carries each shard's owned-range mask —
        implicit pruning: a query whose intersection with a shard's
        range is empty evaluates to 0.
        """
        B = len(masks_list)
        constrained: set[int] = set()
        for masks in masks_list:
            constrained.update(masks.keys())
        fold_owned = self.owned is not None and not skip_owned
        if fold_owned:
            constrained.add(self.by_pos)
        prefixes: dict[int, np.ndarray] = {}
        for pos, alpha in enumerate(self.alphas):
            size = alpha.shape[1]
            if pos not in constrained:
                matrix = alpha[:, :, None]
            else:
                mask = np.ones((size, B), dtype=bool)
                for row, masks in enumerate(masks_list):
                    query_mask = masks.get(pos)
                    if query_mask is not None:
                        mask[:, row] = query_mask
                matrix = alpha[:, :, None] * mask[None, :, :]
                if fold_owned and pos == self.by_pos:
                    matrix = matrix * self.owned[:, :, None]
            prefix = np.zeros(
                (self.num_shards, size + 1, matrix.shape[2]),
                dtype=np.float64,
            )
            np.cumsum(matrix, axis=1, out=prefix[:, 1:, :])
            prefixes[pos] = prefix
        return prefixes

    def _term_products(
        self,
        prefixes: Mapping[int, np.ndarray],
        B: int,
        exclude_pos: int | None = None,
    ) -> np.ndarray:
        """``(T, B)`` products of range sums per flat term, optionally
        leaving one attribute's factors out (the gradient trick).

        Iterates the component-contiguous table: each component's rows
        are one slice of the product matrix, so every multiply is an
        in-place contiguous block operation — no gather/scatter of the
        full ``(T, B)`` matrix per attribute.
        """
        products = np.ones((self.num_terms, B), dtype=np.float64)
        for start, end, s, bounds in self.comp_table:
            block = products[start:end]
            for pos, (lo, hi) in bounds.items():
                if pos == exclude_pos:
                    continue
                prefix = prefixes[pos][s]  # (size+1, B or 1)
                block *= prefix[hi + 1] - prefix[lo]
        return products

    def _component_values(
        self, products: np.ndarray, consume: bool = False
    ) -> np.ndarray:
        """``(C, B)`` — each component's delta-weighted term sum.  With
        ``consume`` the ``(T, B)`` products matrix is weighted in place
        (callers that never touch it again skip a full-size copy)."""
        if self.num_terms == 0:
            return np.empty((0, products.shape[1]), dtype=np.float64)
        if consume:
            weighted = products
            weighted *= self.dprod[:, None]
        else:
            weighted = products * self.dprod[:, None]
        return np.add.reduceat(weighted, self.comp_start[:-1], axis=0)

    def _free_products(
        self, prefixes: Mapping[int, np.ndarray], B: int, exclude_pos: int | None = None
    ) -> np.ndarray:
        """``(S, B)`` — every shard's product of free-attribute full sums."""
        values = np.ones((self.num_shards, B), dtype=np.float64)
        for s, free in enumerate(self.free_of_shard):
            for pos in free:
                if pos == exclude_pos:
                    continue
                values[s] = values[s] * prefixes[pos][s, -1, :]
        return values

    def _masked_values(
        self, masks_list: Sequence[Mapping[int, np.ndarray]]
    ) -> np.ndarray:
        """``(S, B)`` masked polynomial values — the batched analogue of
        ``CompressedPolynomial.evaluate`` across every shard at once."""
        B = len(masks_list)
        prefixes = self._prefixes(masks_list)
        comp_vals = self._component_values(
            self._term_products(prefixes, B), consume=True
        )
        values = self._free_products(prefixes, B)
        for s in range(self.num_shards):
            for k in self.comps_of_shard[s]:
                values[s] = values[s] * comp_vals[k]
        return values

    # ------------------------------------------------------------------
    # COUNT
    # ------------------------------------------------------------------
    def _merge_counts(self, values: np.ndarray) -> list[tuple[float, float]]:
        """Per-query ``(expectation, variance)`` from per-shard masked
        values, using the quadrature merge algebra of the sharding
        layer (per-shard Binomial variances add)."""
        masked = np.clip(values, 0.0, None)
        expectations = self.scales @ masked
        p = np.clip(masked / self.fulls[:, None], 0.0, 1.0)
        variances = self.totals @ (p * (1.0 - p))
        return list(zip(expectations.tolist(), variances.tolist()))

    @staticmethod
    def _mask_key(masks: Mapping[int, np.ndarray]) -> tuple:
        return tuple(
            (pos, np.asarray(masks[pos], dtype=bool).tobytes())
            for pos in sorted(masks)
        )

    def estimate_masks_batch(
        self, masks_list: Sequence[Mapping[int, np.ndarray]]
    ) -> list[tuple[float, float]]:
        """``(expectation, variance)`` per mask dict, cache-assisted."""
        keys = [self._mask_key(masks) for masks in masks_list]
        out: list[tuple[float, float] | None] = [
            self._cache.get(key) for key in keys
        ]
        missing = [index for index, value in enumerate(out) if value is None]
        self.cache_hits += len(masks_list) - len(missing)
        self.cache_misses += len(missing)
        for start in range(0, len(missing), CHUNK):
            chunk = missing[start : start + CHUNK]
            values = self._masked_values([masks_list[i] for i in chunk])
            for index, merged in zip(chunk, self._merge_counts(values)):
                out[index] = merged
                if len(self._cache) >= CACHE_SIZE:
                    self._cache.clear()
                self._cache[keys[index]] = merged
        return out  # type: ignore[return-value]

    def clear_cache(self) -> None:
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Gradient pass (GROUP BY / SUM)
    # ------------------------------------------------------------------
    def _gradient_numerators(
        self,
        pos: int,
        masks_list: Sequence[Mapping[int, np.ndarray]],
        skip_owned: bool = False,
    ) -> np.ndarray:
        """``(S, size, B)`` of ``α_v · ∂P_masked/∂α_v`` per shard — the
        per-value numerators behind GROUP BY and SUM (Eq. 19 batched
        over shards, values, and group combinations at once).

        ``masks_list`` must not constrain ``pos`` itself.  With
        ``skip_owned`` the shard attribute's owned ranges are *not*
        folded in — the grouping-by-shard-attribute case, where label
        filtering happens downstream instead.
        """
        B = len(masks_list)
        S = self.num_shards
        size = self.sizes[pos]
        prefixes = self._prefixes(masks_list, skip_owned=skip_owned)
        excl = self._term_products(prefixes, B, exclude_pos=pos)
        # Full component values (for the outer factors) reuse the
        # excluded products: multiply pos's factors back in.
        full = excl
        if pos in self.entries:
            full = excl.copy()
            rows, shard_of, lo, hi = self.entries[pos]
            prefix = prefixes[pos]
            sums = prefix[shard_of, hi + 1, :] - prefix[shard_of, lo, :]
            full[rows] = full[rows] * sums
        comp_vals = self._component_values(full, consume=True)

        # Outer factors: free product × every component except the one
        # holding pos (all of them, when pos is free in a shard).
        outers = self._free_products(prefixes, B, exclude_pos=pos)
        inner_comp_of_shard = [
            self.comp_of_shard_pos[s].get(pos) for s in range(S)
        ]
        for s in range(S):
            for k in self.comps_of_shard[s]:
                if k != inner_comp_of_shard[s]:
                    outers[s] = outers[s] * comp_vals[k]

        gradients = np.zeros((S, size, B), dtype=np.float64)
        if pos in self.entries:
            # Vectorized scatter over every shard at once: coefficients
            # accumulate at lo / hi+1 per (shard, term), then a cumsum
            # turns the difference array into the per-value gradient.
            rows, shard_of, lo, hi = self.entries[pos]
            coeff = excl[rows] * self.dprod[rows, None]
            diff = np.zeros((S * (size + 1), B), dtype=np.float64)
            np.add.at(diff, shard_of * (size + 1) + lo, coeff)
            np.add.at(diff, shard_of * (size + 1) + hi + 1, -coeff)
            grad_q = np.cumsum(
                diff.reshape(S, size + 1, B)[:, :-1, :], axis=1
            )
            gradients = grad_q * outers[:, None, :]
        for s in range(S):
            if inner_comp_of_shard[s] is None:
                # pos is free in this shard: ∂P/∂α_v is value-independent.
                gradients[s] = outers[s][None, :]
        return self.alphas[pos][:, :, None] * gradients

    def _live_mask(self, base_masks: Mapping[int, np.ndarray]) -> np.ndarray:
        """``(S,)`` — shards whose owned range meets the predicate (all
        live when round-robin); dead shards are exactly pruned."""
        live = np.ones(self.num_shards, dtype=bool)
        if self.owned is None:
            return live
        constraint = base_masks.get(self.by_pos)
        if constraint is None:
            return live
        return (self.owned & constraint[None, :]).any(axis=1)

    def group_by(
        self,
        positions: Sequence[int],
        base_masks: Mapping[int, np.ndarray],
    ):
        """Merged GROUP BY COUNT over already-resolved schema positions.

        ``base_masks`` are the predicate's per-position masks; masks on
        group attributes act as filters on which labels appear (SQL's
        filter-then-group), mirroring ``InferenceEngine.group_by`` and
        the sharding layer's label-union merge.  Returns
        ``{labels: (expectation, variance)}``.
        """
        if not positions:
            raise QueryError("group_by needs at least one attribute")
        if len(set(positions)) != len(positions):
            raise QueryError("duplicate group-by attribute")
        masks = dict(base_masks)
        allowed: dict[int, np.ndarray] = {}
        for pos in positions:
            mask = masks.pop(pos, None)
            if mask is not None:
                allowed[pos] = np.asarray(mask, dtype=bool)
        live = self._live_mask(base_masks)
        if not live.any():
            return {}
        *outer, inner = positions
        group_by_shard_attr = self.owned is not None and self.by_pos in positions

        # Outer combinations: the union over shards of the values each
        # shard would enumerate (owned ranges partition the domain, so
        # the union is exactly the allowed/full value set per position).
        combo_values = []
        for pos in outer:
            if pos in allowed:
                combo_values.append(np.flatnonzero(allowed[pos]).tolist())
            else:
                combo_values.append(list(range(self.sizes[pos])))
        combos: list[tuple[int, ...]] = [()]
        for values in combo_values:
            combos = [prefix + (v,) for prefix in combos for v in values]
        if not combos:
            return {}

        size = self.sizes[inner]
        inner_allowed = allowed.get(inner)
        if self.owned is not None and inner == self.by_pos:
            # Per-shard label filter: a shard only reports labels it owns.
            inner_allowed_by_shard = (
                self.owned
                if inner_allowed is None
                else self.owned & inner_allowed[None, :]
            )
        else:
            shared = (
                np.ones(size, dtype=bool)
                if inner_allowed is None
                else inner_allowed
            )
            inner_allowed_by_shard = np.broadcast_to(
                shared, (self.num_shards, size)
            )

        results: dict[tuple[int, ...], tuple[float, float]] = {}
        for start in range(0, len(combos), CHUNK):
            chunk = combos[start : start + CHUNK]
            rows = []
            for combo in chunk:
                row_masks = dict(masks)
                for pos, value in zip(outer, combo):
                    point = np.zeros(self.sizes[pos], dtype=bool)
                    point[value] = True
                    row_masks[pos] = point
                rows.append(row_masks)
            numerators = self._gradient_numerators(
                inner, rows, skip_owned=group_by_shard_attr
            )
            # (S, size, B) -> merged per (combo, value) over allowed shards
            contrib = np.ones((self.num_shards, len(chunk)), dtype=bool)
            contrib &= live[:, None]
            if self.owned is not None and self.by_pos in outer:
                axis = outer.index(self.by_pos)
                combo_vals = np.asarray([combo[axis] for combo in chunk])
                contrib &= self.owned[:, combo_vals]
            numerators *= contrib[:, None, :]
            expectation = np.einsum(
                "s,svb->vb", self.scales, numerators
            )
            p = np.clip(numerators / self.fulls[:, None, None], 0.0, 1.0)
            variance = np.einsum("s,svb->vb", self.totals, p * (1.0 - p))
            label_mask = inner_allowed_by_shard[:, :, None] & contrib[:, None, :]
            visible = label_mask.any(axis=0)  # (size, B)
            for b, combo in enumerate(chunk):
                for v in np.flatnonzero(visible[:, b]).tolist():
                    results[combo + (v,)] = (
                        float(expectation[v, b]),
                        float(variance[v, b]),
                    )
        return results

    def sum_estimate(
        self,
        pos: int,
        weights: np.ndarray,
        base_masks: Mapping[int, np.ndarray],
    ) -> float:
        """Merged ``E[Σ w(A_pos)]`` over all shards — mirrors
        ``InferenceEngine.sum_estimate`` summed with the linearity merge."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[0] != self.sizes[pos]:
            raise QueryError(
                f"need one weight per domain value of attribute {pos}"
            )
        masks = dict(base_masks)
        attr_mask = masks.pop(pos, None)
        live = self._live_mask(base_masks)
        sum_over_shard_attr = self.owned is not None and pos == self.by_pos
        numerators = self._gradient_numerators(
            pos, [masks], skip_owned=sum_over_shard_attr
        )[:, :, 0]
        counts = numerators * self.scales[:, None]
        if sum_over_shard_attr:
            shard_mask = (
                self.owned
                if attr_mask is None
                else self.owned & attr_mask[None, :]
            )
            counts = np.where(shard_mask, counts, 0.0)
        elif attr_mask is not None:
            counts = np.where(attr_mask[None, :], counts, 0.0)
        counts = np.clip(counts, 0.0, None)
        counts *= live[:, None]
        return float(np.sum(counts @ weights))

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "shards": self.num_shards,
            "terms": self.num_terms,
            "components": int(self.comp_shard.shape[0]),
            "cache_entries": len(self._cache),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def __repr__(self):
        return (
            f"ShardArena(shards={self.num_shards}, "
            f"terms={self.num_terms}, by_pos={self.by_pos})"
        )
