"""Construction of the compressed polynomial's terms (Theorem 4.1).

Starting point is the identity (the paper's Theorem 4.1 regrouped by
statistic set, proved in ``docs`` and tested against the naive
polynomial):

    P  =  Σ_S  Π_{j∈S} (δ_j − 1)  ·  Π_i  rangesum_i(ρ_iS)

where ``S`` ranges over all sets of multi-dimensional statistics whose
predicate intersection is non-empty, ``ρ_iS`` is the intersected range
of ``S`` projected on attribute ``i`` (the full domain when ``S`` does
not constrain ``i``), and ``rangesum_i`` sums the attribute's 1D
variables over that range.  ``S = ∅`` contributes the pure product of
full sums — the "only 1D statistics" polynomial.

Two structural facts keep the term count small:

* statistics over the same attribute set are **disjoint** (Sec 4.1
  assumption), so ``S`` holds at most one statistic per attribute set;
* the sum factorizes over **connected components** of the attribute-
  overlap graph: if two groups of statistics share no attribute, their
  cross terms are products of smaller sums.  Theorem 4.1 admits this
  but enumerates the cross product; we factor it, which is what makes
  configurations like Ent3&4 (pairs with disjoint attributes) cheap.

The output is a list of :class:`Component`, each holding a dense,
numpy-friendly term table.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import StatisticError
from repro.stats.statistic import Statistic, StatisticSet

#: Hard cap on terms per component; hitting it means the statistic
#: configuration genuinely has exponentially many overlaps and needs a
#: different selection (the paper's worst case, end of Sec 4.1).
MAX_TERMS_PER_COMPONENT = 2_000_000


class MultiDimStat:
    """Internal view of one multi-dimensional statistic: its global
    index (the δ variable id), attribute positions, and per-position
    inclusive index ranges."""

    __slots__ = ("index", "positions", "ranges", "value")

    def __init__(self, index: int, positions: tuple[int, ...], ranges: dict, value: float):
        self.index = index
        self.positions = positions
        self.ranges = ranges
        self.value = value

    def __repr__(self):
        return f"MultiDimStat({self.index}, {self.ranges})"


class Component:
    """One connected component of the compressed polynomial.

    Attributes
    ----------
    positions:
        Attribute positions constrained by this component's statistics.
    num_terms:
        ``T`` — number of terms, including the leading empty-set term.
    lo, hi:
        Dicts mapping each position to ``int64[T]`` arrays of inclusive
        range bounds (the empty-set term uses the full domain).
    stat_indptr, stat_ids:
        CSR layout of each term's statistic set ``S`` (global δ ids).
    stat_terms:
        For each δ id used here, the term rows containing it.
    """

    __slots__ = (
        "positions",
        "num_terms",
        "lo",
        "hi",
        "stat_indptr",
        "stat_ids",
        "stat_terms",
        "term_stats",
    )

    def __init__(self, positions, lo, hi, stat_indptr, stat_ids):
        self.positions = tuple(positions)
        self.lo = lo
        self.hi = hi
        self.stat_indptr = stat_indptr
        self.stat_ids = stat_ids
        self.num_terms = int(stat_indptr.shape[0] - 1)
        self.term_stats = [
            tuple(stat_ids[stat_indptr[t] : stat_indptr[t + 1]].tolist())
            for t in range(self.num_terms)
        ]
        stat_terms: dict[int, list[int]] = {}
        for term, stats in enumerate(self.term_stats):
            for stat in stats:
                stat_terms.setdefault(stat, []).append(term)
        self.stat_terms = {
            stat: np.asarray(terms, dtype=np.int64)
            for stat, terms in stat_terms.items()
        }

    def delta_products(self, deltas: np.ndarray) -> np.ndarray:
        """``Π_{j∈S_t} (δ_j − 1)`` for every term ``t``."""
        out = np.ones(self.num_terms, dtype=float)
        if self.stat_ids.size:
            entries = deltas[self.stat_ids] - 1.0
            term_of_entry = np.repeat(
                np.arange(self.num_terms),
                np.diff(self.stat_indptr),
            )
            np.multiply.at(out, term_of_entry, entries)
        return out

    def __repr__(self):
        return f"Component(positions={self.positions}, terms={self.num_terms})"


def build_components(
    statistic_set: StatisticSet,
    max_terms: int = MAX_TERMS_PER_COMPONENT,
) -> tuple[list[Component], list[int]]:
    """Enumerate compressed terms for all multi-dimensional statistics.

    Returns ``(components, free_positions)`` where ``free_positions``
    are attributes untouched by any multi-dimensional statistic (their
    contribution to P is a plain full-sum factor).
    """
    schema = statistic_set.schema
    stats = [
        _to_multidim(index, statistic, schema)
        for index, statistic in enumerate(statistic_set.multi_dim)
    ]
    groups = _group_by_positions(stats)
    component_groups = _connected_components(groups)

    components = []
    used_positions: set[int] = set()
    for group_list in component_groups:
        component = _enumerate_component(schema, group_list, max_terms)
        components.append(component)
        used_positions.update(component.positions)
    free_positions = [
        pos
        for pos in range(schema.num_attributes)
        if pos not in used_positions
    ]
    return components, free_positions


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------

def _to_multidim(index: int, statistic: Statistic, schema) -> MultiDimStat:
    positions = statistic.positions
    ranges = {}
    for pos in positions:
        rng = statistic.range_at(pos)
        size = schema.domain(pos).size
        if rng.high >= size:
            raise StatisticError(
                f"statistic range {rng!r} exceeds domain size {size} at "
                f"attribute position {pos}"
            )
        ranges[pos] = (rng.low, rng.high)
    return MultiDimStat(index, positions, ranges, statistic.value)


def _group_by_positions(stats: Sequence[MultiDimStat]):
    """Group statistics by their attribute set (the disjoint groups)."""
    groups: dict[tuple[int, ...], list[MultiDimStat]] = {}
    for stat in stats:
        groups.setdefault(stat.positions, []).append(stat)
    return [groups[key] for key in sorted(groups)]


def _connected_components(groups):
    """Partition groups into connected components by shared attributes
    (union-find over attribute positions)."""
    parent: dict[int, int] = {}

    def find(pos):
        root = pos
        while parent[root] != root:
            root = parent[root]
        while parent[pos] != root:
            parent[pos], pos = root, parent[pos]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for group in groups:
        positions = group[0].positions
        for pos in positions:
            parent.setdefault(pos, pos)
        for pos in positions[1:]:
            union(positions[0], pos)

    by_root: dict[int, list] = {}
    for group in groups:
        root = find(group[0].positions[0])
        by_root.setdefault(root, []).append(group)
    return [by_root[root] for root in sorted(by_root)]


class _ValueIndex:
    """Per-group, per-position index: which stats of the group cover a
    given domain value.  Used to find intersection candidates without
    scanning the whole group."""

    def __init__(self, group, positions, sizes):
        self.positions = positions
        self.cover = {}
        for pos in positions:
            lists = [[] for _ in range(sizes[pos])]
            for local, stat in enumerate(group):
                low, high = stat.ranges[pos]
                for value in range(low, high + 1):
                    lists[value].append(local)
            self.cover[pos] = lists

    def candidates(self, pos, low, high):
        """Locals of stats whose range at ``pos`` meets ``[low, high]``."""
        seen: set[int] = set()
        lists = self.cover[pos]
        for value in range(low, high + 1):
            seen.update(lists[value])
        return seen


def _enumerate_component(schema, group_list, max_terms) -> Component:
    """DFS over groups (ascending order, at most one stat per group)
    emitting every statistic set with a non-empty intersection."""
    sizes = schema.sizes()
    positions = sorted({pos for group in group_list for pos in group[0].positions})
    indexes = [
        _ValueIndex(group, group[0].positions, sizes) for group in group_list
    ]

    terms_lo: list[dict] = []
    terms_hi: list[dict] = []
    terms_stats: list[tuple[int, ...]] = []

    full = {pos: (0, sizes[pos] - 1) for pos in positions}

    def emit(ranges, stats):
        if len(terms_stats) >= max_terms:
            raise StatisticError(
                "compressed polynomial exceeds "
                f"{max_terms} terms in one component; the statistic "
                "configuration has too many overlapping sets (Sec 4.1 "
                "worst case) — reduce the budget or choose disjoint pairs"
            )
        terms_lo.append({pos: ranges[pos][0] for pos in ranges})
        terms_hi.append({pos: ranges[pos][1] for pos in ranges})
        terms_stats.append(stats)

    emit(full, ())

    def extend(start_group, ranges, stats):
        for gi in range(start_group, len(group_list)):
            group = group_list[gi]
            group_positions = group[0].positions
            shared = [pos for pos in group_positions if ranges[pos] != full[pos]]
            if shared:
                # Use the narrowest already-constrained position for
                # candidate lookup, then verify every shared position.
                probe = min(shared, key=lambda pos: ranges[pos][1] - ranges[pos][0])
                locals_ = indexes[gi].candidates(probe, *ranges[probe])
            else:
                locals_ = range(len(group))
            for local in locals_:
                stat = group[local]
                new_ranges = dict(ranges)
                empty = False
                for pos in group_positions:
                    low = max(ranges[pos][0], stat.ranges[pos][0])
                    high = min(ranges[pos][1], stat.ranges[pos][1])
                    if low > high:
                        empty = True
                        break
                    new_ranges[pos] = (low, high)
                if empty:
                    continue
                new_stats = stats + (stat.index,)
                emit(new_ranges, new_stats)
                extend(gi + 1, new_ranges, new_stats)

    extend(0, full, ())

    num_terms = len(terms_stats)
    lo = {
        pos: np.asarray([term[pos] for term in terms_lo], dtype=np.int64)
        for pos in positions
    }
    hi = {
        pos: np.asarray([term[pos] for term in terms_hi], dtype=np.int64)
        for pos in positions
    }
    lengths = np.asarray([len(stats) for stats in terms_stats], dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    ids = np.asarray(
        [stat for stats in terms_stats for stat in stats], dtype=np.int64
    )
    if ids.size == 0:
        ids = np.empty(0, dtype=np.int64)
    assert num_terms == indptr.shape[0] - 1
    return Component(positions, lo, hi, indptr, ids)
