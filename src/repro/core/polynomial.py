"""The compressed MaxEnt polynomial ``P`` (Eq. 5 / Theorem 4.1).

The polynomial is never materialized as monomials.  It is stored as

    P  =  Π_{p free} fullsum_p  ×  Π_c Q_c
    Q_c =  Σ_t  dprod_c[t]  ·  Π_{p ∈ positions(c)} rangesum_p(lo_t, hi_t)

where ``rangesum_p`` sums the (possibly query-masked) 1D variables of
attribute ``p`` over an inclusive index range, and ``dprod`` is the
``Π_{j∈S}(δ_j − 1)`` factor of each term.  All range sums are computed
with prefix sums, so a full evaluation is ``O(#terms · m + Σ N_i)`` —
this is the oracle behind both query answering (Sec 4.2: evaluate ``P``
with excluded 1D variables set to 0) and the solver's gradients.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.terms import build_components
from repro.core.variables import ModelParameters
from repro.errors import SolverError
from repro.stats.statistic import StatisticSet


def product_excluding(values: np.ndarray, axis: int = 0) -> np.ndarray:
    """For each entry along ``axis``, the product of all *other*
    entries.  Implemented with prefix/suffix cumulative products so
    zeros are handled exactly (no division)."""
    values = np.asarray(values, dtype=float)
    ones_shape = list(values.shape)
    ones_shape[axis] = 1
    ones = np.ones(ones_shape, dtype=float)
    before = np.concatenate(
        [ones, np.cumprod(values, axis=axis).take(range(values.shape[axis] - 1), axis=axis)],
        axis=axis,
    )
    reversed_values = np.flip(values, axis=axis)
    after = np.flip(
        np.concatenate(
            [ones, np.cumprod(reversed_values, axis=axis).take(range(values.shape[axis] - 1), axis=axis)],
            axis=axis,
        ),
        axis=axis,
    )
    return before * after


class EvaluationParts:
    """Intermediate factors of one polynomial evaluation, cached so the
    solver and the inference layer can reuse them for gradients."""

    __slots__ = (
        "prefixes",
        "full_sums",
        "range_sums",
        "range_products",
        "delta_products",
        "component_values",
        "free_product",
        "value",
    )

    def __init__(
        self,
        prefixes,
        full_sums,
        range_sums,
        range_products,
        delta_products,
        component_values,
        free_product,
        value,
    ):
        self.prefixes = prefixes
        self.full_sums = full_sums
        self.range_sums = range_sums
        self.range_products = range_products
        self.delta_products = delta_products
        self.component_values = component_values
        self.free_product = free_product
        self.value = value


class CompressedPolynomial:
    """Compressed representation of ``P`` for one statistic set.

    The structure (terms) depends only on the statistic *predicates*;
    the variable *values* are supplied per call through
    :class:`~repro.core.variables.ModelParameters`.
    """

    def __init__(self, statistic_set: StatisticSet, max_terms: int | None = None):
        self.statistic_set = statistic_set
        self.schema = statistic_set.schema
        self.sizes = self.schema.sizes()
        if max_terms is None:
            self.components, self.free_positions = build_components(statistic_set)
        else:
            self.components, self.free_positions = build_components(
                statistic_set, max_terms
            )
        self.num_deltas = statistic_set.num_multi_dim
        self._component_of_position: dict[int, int] = {}
        for index, component in enumerate(self.components):
            for pos in component.positions:
                self._component_of_position[pos] = index
        self._component_of_stat: dict[int, int] = {}
        for index, component in enumerate(self.components):
            for stat in component.stat_terms:
                self._component_of_stat[stat] = index

    # ------------------------------------------------------------------
    # Size accounting (Sec 4.1 / Theorem 4.2)
    # ------------------------------------------------------------------
    @property
    def num_terms(self) -> int:
        """Compressed term count (empty-set terms included)."""
        return sum(component.num_terms for component in self.components) + len(
            self.free_positions
        )

    @property
    def num_uncompressed_monomials(self) -> int:
        """``|Tup|`` — the monomial count of the uncompressed Eq. (5)."""
        return self.schema.num_possible_tuples()

    def size_report(self) -> dict:
        """Summary-size metrics used by the compression benchmarks."""
        range_entries = sum(
            component.num_terms * len(component.positions)
            for component in self.components
        )
        literal_terms = 1
        for component in self.components:
            literal_terms *= component.num_terms
        return {
            "num_components": len(self.components),
            "num_terms": self.num_terms,
            # What a literal Theorem 4.1 enumeration (no connected-
            # component factorization) would produce: every combination
            # of per-component statistic sets is a global set S.
            "num_terms_without_component_factoring": literal_terms,
            "num_uncompressed_monomials": self.num_uncompressed_monomials,
            "num_range_entries": range_entries,
            "num_delta_entries": sum(
                int(component.stat_ids.size) for component in self.components
            ),
            "num_variables": sum(self.sizes) + self.num_deltas,
        }

    def component_of_position(self, pos: int) -> int | None:
        return self._component_of_position.get(pos)

    def component_of_stat(self, stat_id: int) -> int:
        try:
            return self._component_of_stat[stat_id]
        except KeyError:
            raise SolverError(
                f"multi-dimensional statistic {stat_id} is not part of any "
                "component"
            ) from None

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def masked_alphas(
        self, params: ModelParameters, masks: Mapping[int, np.ndarray] | None
    ) -> list[np.ndarray]:
        """Apply Sec 4.2's optimization: excluded 1D variables become 0."""
        if not masks:
            return params.alphas
        out = []
        for pos, alpha in enumerate(params.alphas):
            mask = masks.get(pos)
            if mask is None:
                out.append(alpha)
            else:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape[0] != alpha.shape[0]:
                    raise SolverError(
                        f"mask for attribute {pos} has size {mask.shape[0]}, "
                        f"expected {alpha.shape[0]}"
                    )
                out.append(np.where(mask, alpha, 0.0))
        return out

    def evaluation_parts(
        self,
        params: ModelParameters,
        masks: Mapping[int, np.ndarray] | None = None,
    ) -> EvaluationParts:
        """Evaluate ``P`` and keep every intermediate factor."""
        alphas = self.masked_alphas(params, masks)
        prefixes = [
            np.concatenate([[0.0], np.cumsum(alpha, dtype=float)])
            for alpha in alphas
        ]
        full_sums = [float(prefix[-1]) for prefix in prefixes]

        range_sums: list[dict[int, np.ndarray]] = []
        range_products: list[np.ndarray] = []
        delta_products: list[np.ndarray] = []
        component_values: list[float] = []
        for component in self.components:
            sums = {}
            product = np.ones(component.num_terms, dtype=float)
            for pos in component.positions:
                prefix = prefixes[pos]
                sums[pos] = prefix[component.hi[pos] + 1] - prefix[component.lo[pos]]
                product = product * sums[pos]
            dprod = component.delta_products(params.deltas)
            range_sums.append(sums)
            range_products.append(product)
            delta_products.append(dprod)
            component_values.append(float(np.dot(product, dprod)))

        free_product = 1.0
        for pos in self.free_positions:
            free_product *= full_sums[pos]
        value = free_product
        for component_value in component_values:
            value *= component_value
        return EvaluationParts(
            prefixes,
            full_sums,
            range_sums,
            range_products,
            delta_products,
            component_values,
            free_product,
            value,
        )

    def evaluate(
        self,
        params: ModelParameters,
        masks: Mapping[int, np.ndarray] | None = None,
    ) -> float:
        """``P[α masked]`` — the quantity of Sec 4.2's query formula."""
        return self.evaluation_parts(params, masks).value

    def evaluate_batch(
        self,
        params: ModelParameters,
        masks_list: Sequence[Mapping[int, np.ndarray] | None],
    ) -> np.ndarray:
        """``P[α masked]`` for a whole batch of queries in one pass.

        Positions unconstrained by *every* query in the batch share a
        single scalar prefix sum; constrained positions get a
        ``(batch, size + 1)`` prefix matrix, and the per-component term
        products/dot products run batched.  This is the engine behind
        ``run_many()``-style batched query execution: the Python-level
        component walk happens once instead of once per query.
        """
        batch = len(masks_list)
        if batch == 0:
            return np.empty(0, dtype=float)
        masked_positions: set[int] = set()
        for masks in masks_list:
            if masks:
                masked_positions.update(masks.keys())

        # pos -> (size + 1,) shared prefix, or (batch, size + 1) per query.
        prefixes: dict[int, np.ndarray] = {}
        for pos, alpha in enumerate(params.alphas):
            if pos in masked_positions:
                matrix = np.broadcast_to(alpha, (batch, alpha.shape[0])).copy()
                for row, masks in enumerate(masks_list):
                    mask = masks.get(pos) if masks else None
                    if mask is None:
                        continue
                    mask = np.asarray(mask, dtype=bool)
                    if mask.shape[0] != alpha.shape[0]:
                        raise SolverError(
                            f"mask for attribute {pos} has size "
                            f"{mask.shape[0]}, expected {alpha.shape[0]}"
                        )
                    matrix[row, ~mask] = 0.0
                prefix = np.concatenate(
                    [np.zeros((batch, 1)), np.cumsum(matrix, axis=1)], axis=1
                )
            else:
                prefix = np.concatenate([[0.0], np.cumsum(alpha, dtype=float)])
            prefixes[pos] = prefix

        values = np.ones(batch, dtype=float)
        for pos in self.free_positions:
            values = values * prefixes[pos][..., -1]
        for component in self.components:
            product: np.ndarray | float = 1.0
            for pos in component.positions:
                prefix = prefixes[pos]
                # (num_terms,) shared or (batch, num_terms) per query.
                product = product * (
                    prefix[..., component.hi[pos] + 1]
                    - prefix[..., component.lo[pos]]
                )
            values = values * (product @ component.delta_products(params.deltas))
        return np.broadcast_to(values, (batch,)).astype(float, copy=True)

    # ------------------------------------------------------------------
    # Gradients
    # ------------------------------------------------------------------
    def outer_products(self, parts: EvaluationParts) -> np.ndarray:
        """For each component ``c``: ``free_product × Π_{c'≠c} Q_{c'}``."""
        values = np.asarray(parts.component_values, dtype=float)
        if values.size == 0:
            return values
        return parts.free_product * product_excluding(values)

    def free_outer_product(self, parts: EvaluationParts, pos: int) -> float:
        """``Π_{p' free, p'≠pos} fullsum × Π_c Q_c`` for a free attribute."""
        others = [parts.full_sums[p] for p in self.free_positions if p != pos]
        product = 1.0
        for value in others:
            product *= value
        for component_value in parts.component_values:
            product *= component_value
        return product

    def attribute_gradient(
        self, parts: EvaluationParts, pos: int
    ) -> np.ndarray:
        """``∂P/∂α_{pos,v}`` for every value ``v`` of attribute ``pos``.

        By overcompleteness each monomial holds exactly one variable of
        the attribute, so this is also the coefficient vector of the
        linear expansion Eq. (7).
        """
        size = self.sizes[pos]
        component_index = self._component_of_position.get(pos)
        if component_index is None:
            return np.full(size, self.free_outer_product(parts, pos))
        component = self.components[component_index]
        sums = parts.range_sums[component_index]
        rows = [sums[p] for p in component.positions if p != pos]
        if rows:
            coeff = np.prod(np.stack(rows, axis=0), axis=0)
        else:
            coeff = np.ones(component.num_terms, dtype=float)
        coeff = coeff * parts.delta_products[component_index]
        diff = np.zeros(size + 1, dtype=float)
        np.add.at(diff, component.lo[pos], coeff)
        np.add.at(diff, component.hi[pos] + 1, -coeff)
        grad_q = np.cumsum(diff[:-1])
        outer = self.outer_products(parts)[component_index]
        return grad_q * outer

    def delta_gradient(self, parts: EvaluationParts, params: ModelParameters, stat_id: int) -> float:
        """``∂P/∂δ_{stat_id}`` — sum over the terms containing the
        statistic, with its ``(δ−1)`` factor removed."""
        component_index = self.component_of_stat(stat_id)
        component = self.components[component_index]
        terms = component.stat_terms.get(stat_id)
        if terms is None or terms.size == 0:
            return 0.0
        range_products = parts.range_products[component_index]
        deltas = params.deltas
        total = 0.0
        for term in terms.tolist():
            dprod = 1.0
            for other in component.term_stats[term]:
                if other != stat_id:
                    dprod *= deltas[other] - 1.0
            total += range_products[term] * dprod
        outer = self.outer_products(parts)[component_index]
        return total * outer

    # ------------------------------------------------------------------
    # Expected values (Eq. 8)
    # ------------------------------------------------------------------
    def expected_one_dim(
        self, parts: EvaluationParts, params: ModelParameters, total: int, pos: int
    ) -> np.ndarray:
        """``E[⟨c_j, I⟩] = n α_j P_αj / P`` for all 1D statistics of one
        attribute at once."""
        if parts.value <= 0:
            raise SolverError("polynomial evaluates to 0; model is degenerate")
        gradient = self.attribute_gradient(parts, pos)
        return total * params.alphas[pos] * gradient / parts.value

    def expected_multi_dim(
        self, parts: EvaluationParts, params: ModelParameters, total: int, stat_id: int
    ) -> float:
        """``E[⟨c_j, I⟩]`` for one multi-dimensional statistic."""
        if parts.value <= 0:
            raise SolverError("polynomial evaluates to 0; model is degenerate")
        gradient = self.delta_gradient(parts, params, stat_id)
        return total * float(params.deltas[stat_id]) * gradient / parts.value


def initial_parameters(polynomial: CompressedPolynomial) -> ModelParameters:
    """Fresh all-ones parameters shaped for the polynomial."""
    return ModelParameters.initial(polynomial.sizes, polynomial.num_deltas)


def masks_from_conjunction(polynomial: CompressedPolynomial, predicate) -> dict:
    """Per-position boolean masks of a query conjunction (helper shared
    by the inference layer and tests)."""
    masks = {}
    for pos in predicate.constrained_positions:
        masks[pos] = predicate.predicate_at(pos).mask(polynomial.sizes[pos])
    return masks


def check_parameter_shapes(
    polynomial: CompressedPolynomial, params: ModelParameters
) -> None:
    """Raise when parameters do not match the polynomial's shape."""
    expected = polynomial.sizes
    if len(params.alphas) != len(expected):
        raise SolverError(
            f"expected {len(expected)} alpha arrays, got {len(params.alphas)}"
        )
    for pos, (alpha, size) in enumerate(zip(params.alphas, expected)):
        if alpha.shape[0] != size:
            raise SolverError(
                f"alpha array for attribute {pos} has size {alpha.shape[0]}, "
                f"expected {size}"
            )
    if params.deltas.shape[0] != polynomial.num_deltas:
        raise SolverError(
            f"expected {polynomial.num_deltas} delta values, got "
            f"{params.deltas.shape[0]}"
        )
