"""Model parameters: the variable values ``α_j`` of the MaxEnt polynomial.

Following the paper's notation we keep two families:

* ``alphas`` — one array per attribute holding the 1D variables
  (``α_j`` for ``j ∈ J_i``, indexed by domain value), and
* ``deltas`` — one array entry per multi-dimensional statistic
  (the ``δ`` variables of Sec 4.1).

All values are non-negative reals; a fresh model starts at 1.0
everywhere, which makes the polynomial count tuples uniformly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SolverError


class ModelParameters:
    """Mutable container for the fitted variable values."""

    __slots__ = ("alphas", "deltas")

    def __init__(self, alphas: Sequence[np.ndarray], deltas: np.ndarray):
        self.alphas = [np.asarray(alpha, dtype=float) for alpha in alphas]
        self.deltas = np.asarray(deltas, dtype=float)
        for alpha in self.alphas:
            if alpha.ndim != 1:
                raise SolverError("alpha arrays must be one-dimensional")
            if alpha.size and alpha.min() < 0:
                raise SolverError("alpha values must be non-negative")
        if self.deltas.ndim != 1:
            raise SolverError("delta array must be one-dimensional")
        if self.deltas.size and self.deltas.min() < 0:
            raise SolverError("delta values must be non-negative")

    @classmethod
    def initial(cls, sizes: Sequence[int], num_deltas: int) -> "ModelParameters":
        """All-ones starting point (the uniform model)."""
        return cls(
            [np.ones(size, dtype=float) for size in sizes],
            np.ones(num_deltas, dtype=float),
        )

    def copy(self) -> "ModelParameters":
        return ModelParameters(
            [alpha.copy() for alpha in self.alphas], self.deltas.copy()
        )

    @property
    def num_variables(self) -> int:
        """Total variable count ``k``."""
        return sum(alpha.size for alpha in self.alphas) + self.deltas.size

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flat dict representation used by save/load."""
        out = {
            f"alpha_{pos}": alpha for pos, alpha in enumerate(self.alphas)
        }
        out["deltas"] = self.deltas
        return out

    @classmethod
    def from_arrays(cls, arrays: dict) -> "ModelParameters":
        positions = sorted(
            int(key.split("_", 1)[1])
            for key in arrays
            if key.startswith("alpha_")
        )
        if positions != list(range(len(positions))):
            raise SolverError("parameter archive is missing alpha arrays")
        alphas = [arrays[f"alpha_{pos}"] for pos in positions]
        return cls(alphas, arrays["deltas"])

    def __repr__(self):
        sizes = [alpha.size for alpha in self.alphas]
        return f"ModelParameters(alphas={sizes}, deltas={self.deltas.size})"
