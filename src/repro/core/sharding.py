"""Sharded summaries: partition-wise build, merge-at-query-time.

The paper fits one max-entropy model over the whole relation, which
caps both build throughput (one big Mirror Descent solve) and the data
sizes a summary can serve.  This module bolts scale on the same way
OrpheusDB bolts versioning onto relations and the LSST design
partitions the sky: split the relation into shards, fit one
:class:`~repro.core.summary.EntropySummary` per shard, and answer
queries by evaluating shards independently and merging.

The merge algebra follows from rows belonging to exactly one shard and
the shard models being fitted independently:

* **COUNT** — expectations add: ``E[q] = Σ_s E_s[q]``;
* **SUM** — same, by linearity;
* **AVG** — count-weighted: ``E[SUM]/E[COUNT]`` over the merged values
  (the ratio estimator the samplers use);
* **error bounds** — per-shard Binomial variances add (independent
  models), i.e. standard deviations combine in quadrature.

Two partitioning schemes:

* **round-robin** (``by=None``) — row ``i`` goes to shard ``i % n``;
  shards are statistically interchangeable subsamples.
* **by attribute** (``by="attr"``) — the attribute's domain is split
  into ``n`` contiguous index ranges balanced by row count; a shard
  owns every row whose value falls in its range.  Queries constraining
  the attribute then *prune*: shards whose range misses the predicate
  contribute an exact zero and are never evaluated.

Sharding keeps the overall model budget constant — the builder divides
the 2D bucket budget across shards — so the summed solver work often
*drops* (solve cost grows superlinearly with per-model statistic
count) and the shard fits run in parallel worker processes on top.
"""

from __future__ import annotations

import json
import math
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.arena import ShardArena
from repro.core.summary import EntropySummary
from repro.data.relation import Relation
from repro.errors import QueryError, ReproError
from repro.stats.predicates import Conjunction, RangePredicate, conjunction_from_masks

#: two-sided 95% normal quantile (matches repro.core.inference).
_Z95 = 1.959963984540054


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Partition:
    """A relation split into disjoint shards.

    ``by_position``/``ranges`` are ``None`` for round-robin; for
    attribute partitioning, ``ranges[s]`` is the inclusive domain-index
    interval of the shard attribute owned by shard ``s``.
    """

    relations: tuple[Relation, ...]
    by_position: int | None = None
    ranges: tuple[tuple[int, int], ...] | None = None

    @property
    def num_shards(self) -> int:
        return len(self.relations)


def partition_relation(
    relation: Relation, num_shards: int, by=None
) -> Partition:
    """Split a relation into ``num_shards`` disjoint shards.

    Round-robin (``by=None``) assigns row ``i`` to shard ``i % n``.
    With ``by`` set, the attribute's domain indices are cut into ``n``
    contiguous ranges balanced by row count, and each shard takes the
    rows whose value falls in its range.
    """
    if num_shards < 2:
        raise ReproError(f"partitioning needs >= 2 shards, got {num_shards}")
    if num_shards > relation.num_rows:
        raise ReproError(
            f"cannot cut {relation.num_rows} rows into {num_shards} shards"
        )
    if by is None:
        rows = np.arange(relation.num_rows)
        shards = tuple(
            relation.sample_rows(rows[start::num_shards])
            for start in range(num_shards)
        )
        return Partition(shards)

    pos = relation.schema.position(by)
    size = relation.schema.domain(pos).size
    if num_shards > size:
        raise ReproError(
            f"attribute {relation.schema.attribute_names[pos]!r} has only "
            f"{size} values; cannot cut it into {num_shards} shards"
        )
    marginal = relation.marginal(pos)
    cumulative = np.cumsum(marginal)
    total = int(cumulative[-1])
    # Cut the cumulative distribution at n equal row quotas, then snap
    # each cut to a value boundary.  Duplicate cuts (one value holding
    # more than a quota) would leave a shard empty.
    quotas = total * np.arange(1, num_shards) / num_shards
    cuts = np.searchsorted(cumulative, quotas, side="left")
    bounds = [0, *(int(cut) + 1 for cut in cuts), size]
    ranges = []
    for start, stop in zip(bounds, bounds[1:]):
        if stop <= start:
            raise ReproError(
                f"attribute {relation.schema.attribute_names[pos]!r} is too "
                f"skewed to balance into {num_shards} shards; use fewer "
                "shards or round-robin partitioning"
            )
        ranges.append((start, stop - 1))
    column = relation.column(pos)
    shards = []
    for low, high in ranges:
        keep = (column >= low) & (column <= high)
        if not keep.any():
            raise ReproError(
                f"shard range [{low}, {high}] of attribute "
                f"{relation.schema.attribute_names[pos]!r} holds no rows; "
                "use fewer shards or round-robin partitioning"
            )
        shards.append(relation.sample_rows(np.flatnonzero(keep)))
    return Partition(tuple(shards), pos, tuple(ranges))


# ----------------------------------------------------------------------
# Merged estimates
# ----------------------------------------------------------------------

class MergedEstimate:
    """Shard-merged answer to one counting query.

    Mirrors the :class:`~repro.core.inference.QueryEstimate` interface
    (``expectation``/``std``/``ci95``/``rounded``) but carries an
    explicit variance — the quadrature sum of the per-shard Binomial
    variances — instead of deriving one from a single Binomial.
    """

    __slots__ = ("expectation", "variance", "total")

    def __init__(self, expectation: float, variance: float, total: int):
        self.expectation = expectation
        self.variance = max(variance, 0.0)
        self.total = total

    @property
    def probability(self) -> float:
        if self.total <= 0:
            return 0.0
        return min(max(self.expectation / self.total, 0.0), 1.0)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def ci95(self) -> tuple[float, float]:
        half = _Z95 * self.std
        return (
            max(self.expectation - half, 0.0),
            min(self.expectation + half, float(self.total)),
        )

    @property
    def rounded(self) -> int:
        from repro.core.inference import round_half_up

        return round_half_up(self.expectation)

    def __repr__(self):
        return (
            f"MergedEstimate({self.expectation:.3f} ± {self.std:.3f}, "
            f"n={self.total})"
        )


def _merge(estimates, total: int) -> MergedEstimate:
    expectation = 0.0
    variance = 0.0
    for estimate in estimates:
        expectation += estimate.expectation
        variance += estimate.variance
    return MergedEstimate(expectation, variance, total)


# ----------------------------------------------------------------------
# Worker-process build
# ----------------------------------------------------------------------

def _fit_shard_direct(payload) -> EntropySummary:
    """Fit one shard in the current process."""
    relation, stat_options, max_iterations, threshold, name = payload
    from repro.stats.selection import build_statistic_set

    statistic_set = build_statistic_set(relation, **stat_options)
    return EntropySummary.from_statistics(
        statistic_set,
        max_iterations=max_iterations,
        threshold=threshold,
        name=name,
    )


def _fit_shard(payload):
    """Worker-process entry point (module-level so it pickles)."""
    return _fit_shard_direct(payload).to_payload()


def default_workers(num_shards: int) -> int:
    """Worker-process count: one per shard, capped by the machine."""
    return max(1, min(num_shards, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# The sharded summary
# ----------------------------------------------------------------------

class ShardedSummary:
    """One logical summary made of per-shard MaxEnt models.

    Build with :meth:`fit_partitions` (or, at the API layer,
    ``SummaryBuilder(relation).shards(n, by=...)``).  Queries evaluate
    every non-pruned shard and merge; see the module docstring for the
    merge algebra.
    """

    def __init__(
        self,
        shards: Sequence[EntropySummary],
        name: str = "summary",
        shard_by: str | None = None,
        ranges: Sequence[tuple[int, int]] | None = None,
    ):
        shards = list(shards)
        if len(shards) < 2:
            raise ReproError("a sharded summary needs at least two shards")
        schema = shards[0].schema
        for shard in shards[1:]:
            if shard.schema != schema:
                raise ReproError("all shards must share one schema")
        if (shard_by is None) != (ranges is None):
            raise ReproError("shard_by and ranges must be given together")
        if ranges is not None and len(ranges) != len(shards):
            raise ReproError("need exactly one owned range per shard")
        self.shards = shards
        self.name = name
        self.schema = schema
        self.shard_by = shard_by
        self.total = sum(shard.total for shard in shards)
        if shard_by is None:
            self._by_pos = None
            self._owned: list[RangePredicate] | None = None
        else:
            self._by_pos = schema.position(shard_by)
            self._owned = [RangePredicate(low, high) for low, high in ranges]
        # The contiguous evaluation kernel (built lazily, or eagerly via
        # warm()) and the persistent shard-fanout pool for the legacy
        # per-shard path.  Both are derived state: never pickled.
        self._arena: ShardArena | None = None
        self._arena_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- construction ----------------------------------------------------
    @classmethod
    def fit_partitions(
        cls,
        partition: Partition,
        stat_options: Mapping | None = None,
        max_iterations: int = 30,
        threshold: float = 1e-6,
        name: str = "summary",
        workers: int | None = None,
    ) -> "ShardedSummary":
        """Fit one summary per shard, in parallel worker processes.

        ``stat_options`` are :func:`repro.stats.selection.build_statistic_set`
        keywords applied to every shard (the builder pre-divides bucket
        budgets).  ``workers=1`` fits serially in-process; the default
        uses one worker per shard up to the machine's core count.
        """
        stat_options = dict(stat_options or {})
        payloads = [
            (
                relation,
                stat_options,
                max_iterations,
                threshold,
                f"{name}/shard{index}",
            )
            for index, relation in enumerate(partition.relations)
        ]
        workers = default_workers(len(payloads)) if workers is None else workers
        shards = None
        if workers > 1:
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(_fit_shard, payloads))
            except OSError:
                # Restricted environments (no fork/spawn) fall back to a
                # serial build rather than failing the fit.
                shards = None
            else:
                shards = [
                    EntropySummary.from_payload(document, arrays)
                    for document, arrays in results
                ]
        if shards is None:
            # Serial in-process build: keep the fitted objects directly
            # instead of round-tripping through the worker payload
            # (which would rebuild every shard polynomial a second time).
            shards = [_fit_shard_direct(payload) for payload in payloads]
        shard_by = (
            None
            if partition.by_position is None
            else shards[0].schema.attribute_names[partition.by_position]
        )
        return cls(shards, name=name, shard_by=shard_by, ranges=partition.ranges)

    # -- derived evaluation state ----------------------------------------
    @property
    def arena(self) -> ShardArena:
        """The contiguous cross-shard evaluation kernel (built on first
        use; :meth:`warm` builds it eagerly at load/publish time)."""
        arena = self._arena
        if arena is None:
            with self._arena_lock:
                arena = self._arena
                if arena is None:
                    arena = self._arena = ShardArena(self)
        return arena

    def warm(self) -> "ShardedSummary":
        """Eagerly build the arena (load / hot-reload / publish path)."""
        self.arena
        return self

    def _executor(self) -> ThreadPoolExecutor:
        """The persistent shard-fanout pool (one per summary, created on
        first parallel batch, shut down by :meth:`close`)."""
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=self.num_shards,
                        thread_name_prefix="repro-shard",
                    )
        return pool

    def close(self) -> None:
        """Deterministically release the shard-fanout pool."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedSummary":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for derived in ("_arena", "_pool", "_arena_lock", "_pool_lock"):
            state.pop(derived, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._arena = None
        self._arena_lock = threading.Lock()
        self._pool = None
        self._pool_lock = threading.Lock()

    # -- introspection ---------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def by_position(self) -> int | None:
        """Schema position of the shard attribute (``None`` = round-robin)."""
        return self._by_pos

    @property
    def owned_ranges(self) -> list[tuple[int, int]] | None:
        """Inclusive domain-index range each shard owns (``None`` =
        round-robin)."""
        if self._owned is None:
            return None
        return [(owned.low, owned.high) for owned in self._owned]

    @property
    def num_statistics(self) -> int:
        """Statistic count across all shards."""
        return sum(shard.num_statistics for shard in self.shards)

    def clear_cache(self) -> None:
        for shard in self.shards:
            shard.engine.clear_cache()
        arena = self._arena
        if arena is not None:
            arena.clear_cache()

    def size_report(self) -> dict:
        """Aggregate storage footprint across shards."""
        report = {
            "num_shards": self.num_shards,
            "num_terms": 0,
            "parameter_bytes": 0,
            "term_bytes": 0,
            "total_bytes": 0,
        }
        for shard in self.shards:
            shard_report = shard.size_report()
            report["num_terms"] += shard_report["num_terms"]
            report["parameter_bytes"] += shard_report["parameter_bytes"]
            report["term_bytes"] += shard_report["term_bytes"]
            report["total_bytes"] += shard_report["total_bytes"]
        return report

    # -- ingest routing / surgery ----------------------------------------
    def route_indices(self, values: np.ndarray) -> np.ndarray:
        """Owning shard of each shard-attribute domain index.

        Only meaningful for attribute-partitioned summaries.  Indices
        beyond the top owned range (domain growth: an append introduced
        a new value) route to the shard owning the highest range — its
        range is widened by the ingest layer after the refit.
        """
        if self._owned is None:
            raise ReproError(
                "route_indices needs an attribute-partitioned summary; "
                "round-robin appends are balanced by the ingest pipeline"
            )
        values = np.asarray(values, dtype=np.int64)
        # Ranges are contiguous and sorted: cutting at each range's high
        # bound buckets every index, with everything above the top range
        # falling into the last shard.
        highs = np.asarray([owned.high for owned in self._owned[:-1]])
        return np.searchsorted(highs, values, side="left")

    def with_shards(
        self,
        replacements: Mapping[int, EntropySummary],
        ranges: Sequence[tuple[int, int]] | None = None,
    ) -> "ShardedSummary":
        """New summary with some shards swapped out, the rest shared.

        The ingest layer's publish step: delta-refit shard models
        replace their predecessors, untouched shard objects are reused
        as-is (they are immutable after fitting).  ``ranges`` overrides
        the owned ranges — required when domain growth widened the top
        shard's range — and defaults to the current ones.
        """
        for index in replacements:
            if not 0 <= index < self.num_shards:
                raise ReproError(
                    f"no shard {index} in a {self.num_shards}-shard summary"
                )
        shards = [
            replacements.get(index, shard)
            for index, shard in enumerate(self.shards)
        ]
        if ranges is None:
            ranges = self.owned_ranges
        # Publishes swap summaries under live traffic: build the new
        # arena now so the first query never pays for it.
        return ShardedSummary(
            shards, name=self.name, shard_by=self.shard_by, ranges=ranges
        ).warm()

    # -- shard routing ---------------------------------------------------
    def shard_conjunctions(
        self, predicate: Conjunction | None
    ) -> list[Conjunction | None]:
        """The conjunction each shard should evaluate; ``None`` = pruned.

        This is the single pruning pass shared by every query path
        (scalar counts, group-bys, sums, and the planner's routing
        stage): the predicate's per-attribute masks are derived *once*,
        then only the shard attribute's mask is intersected with each
        shard's owned range.  An empty intersection means the shard
        provably contributes zero and is never evaluated.
        """
        if self._owned is None:
            narrowed = (
                Conjunction(self.schema, {})
                if predicate is None or predicate.is_trivial()
                else predicate
            )
            return [narrowed] * self.num_shards
        size = self.schema.domain(self._by_pos).size
        if predicate is None or predicate.is_trivial():
            return [
                Conjunction(self.schema, {self._by_pos: owned})
                for owned in self._owned
            ]
        base_masks = {
            pos: predicate.predicate_at(pos).mask(self.schema.domain(pos).size)
            for pos in predicate.constrained_positions
        }
        constraint = base_masks.get(self._by_pos)
        conjunctions: list[Conjunction | None] = []
        for owned in self._owned:
            owned_mask = owned.mask(size)
            narrowed_mask = (
                owned_mask if constraint is None else constraint & owned_mask
            )
            if not narrowed_mask.any():
                conjunctions.append(None)
                continue
            masks = dict(base_masks)
            masks[self._by_pos] = narrowed_mask
            conjunctions.append(conjunction_from_masks(self.schema, masks))
        return conjunctions

    def live_shards(self, predicate: Conjunction | None) -> list[int]:
        """Indices of the shards a predicate can touch.

        The planner's routing stage calls this once per query, so it
        only intersects the shard attribute's mask with each owned
        range — no per-shard conjunctions are built.
        """
        if self._owned is None or predicate is None or predicate.is_trivial():
            return list(range(self.num_shards))
        constraint = predicate.predicate_at(self._by_pos)
        if constraint.is_true:
            return list(range(self.num_shards))
        size = self.schema.domain(self._by_pos).size
        mask = constraint.mask(size)
        return [
            index
            for index, owned in enumerate(self._owned)
            if (mask & owned.mask(size)).any()
        ]

    def _query_masks(self, predicate: Conjunction | None) -> dict:
        """A predicate's per-position masks (schema-checked) for the
        arena kernel; owned-range folding happens inside the arena."""
        if predicate is None or predicate.is_trivial():
            return {}
        if predicate.schema != self.schema:
            raise QueryError("query predicate uses a different schema")
        return predicate.attribute_masks()

    # -- querying --------------------------------------------------------
    def count(self, predicate: Conjunction) -> MergedEstimate:
        """Merged estimate of ``SELECT COUNT(*) WHERE predicate``."""
        return self.estimate(predicate)

    def estimate(
        self, predicate: Conjunction | None, use_arena: bool = True
    ) -> MergedEstimate:
        if not use_arena:
            estimates = [
                shard.engine.estimate(narrowed)
                for shard, narrowed in zip(
                    self.shards, self.shard_conjunctions(predicate)
                )
                if narrowed is not None
            ]
            return _merge(estimates, self.total)
        expectation, variance = self.arena.estimate_masks_batch(
            [self._query_masks(predicate)]
        )[0]
        return MergedEstimate(expectation, variance, self.total)

    def estimate_batch(
        self,
        predicates: Sequence[Conjunction],
        parallel: bool | None = None,
        use_arena: bool = True,
    ) -> list[MergedEstimate]:
        """Merged estimates for a batch in one arena pass.

        The default route evaluates every query across every live shard
        in a single set of matrix operations over the
        :class:`~repro.core.arena.ShardArena`.  ``use_arena=False``
        falls back to per-shard vectorized evaluation; there,
        ``parallel`` (default: when the machine has more than one core)
        fans the shard passes across the summary's persistent thread
        pool — the numpy kernels run outside the GIL.
        """
        if use_arena:
            masks_list = [
                self._query_masks(predicate) for predicate in predicates
            ]
            return [
                MergedEstimate(expectation, variance, self.total)
                for expectation, variance in self.arena.estimate_masks_batch(
                    masks_list
                )
            ]
        predicates = [
            predicate if predicate is not None else Conjunction(self.schema, {})
            for predicate in predicates
        ]
        for predicate in predicates:
            if predicate.schema != self.schema:
                raise QueryError("query predicate uses a different schema")
        # Masks are shard-invariant: compute each predicate's once and
        # only intersect the owned range per shard.
        base_masks = [predicate.attribute_masks() for predicate in predicates]
        if self._owned is None:
            owned_masks = None
        else:
            size = self.schema.domain(self._by_pos).size
            owned_masks = [owned.mask(size) for owned in self._owned]
        expectations = np.zeros(len(predicates))
        variances = np.zeros(len(predicates))

        def shard_pass(index: int):
            live: list[int] = []
            masks_list: list[dict] = []
            for query_index, masks in enumerate(base_masks):
                if owned_masks is None:
                    live.append(query_index)
                    masks_list.append(masks)
                    continue
                constraint = masks.get(self._by_pos)
                if constraint is None:
                    narrowed = owned_masks[index]
                else:
                    narrowed = constraint & owned_masks[index]
                    if not narrowed.any():
                        continue  # pruned: exact zero for this shard
                shard_masks = dict(masks)
                shard_masks[self._by_pos] = narrowed
                live.append(query_index)
                masks_list.append(shard_masks)
            if not live:
                return (), ()
            estimates = self.shards[index].engine.estimate_masks_batch(masks_list)
            return live, estimates

        if parallel is None:
            parallel = (os.cpu_count() or 1) > 1
        if parallel and self.num_shards > 1:
            # Persistent pool: constructing an executor per call costs
            # more than the shard passes themselves on small batches.
            passes = list(self._executor().map(shard_pass, range(self.num_shards)))
        else:
            passes = [shard_pass(index) for index in range(self.num_shards)]
        for live, estimates in passes:
            for query_index, estimate in zip(live, estimates):
                expectations[query_index] += estimate.expectation
                variances[query_index] += estimate.variance
        return [
            MergedEstimate(float(expectation), float(variance), self.total)
            for expectation, variance in zip(expectations, variances)
        ]

    def group_by(
        self,
        attrs: Sequence,
        predicate: Conjunction | None = None,
        use_arena: bool = True,
    ) -> dict[tuple, MergedEstimate]:
        """Merged GROUP BY COUNT(*): the union of shard groups, with
        per-label expectations summed and variances added.  The default
        route batches every (shard, group combination) through one
        arena gradient pass; ``use_arena=False`` walks shards one by
        one."""
        if use_arena:
            positions = [self.schema.position(attr) for attr in attrs]
            results = self.arena.group_by(
                positions, self._query_masks(predicate)
            )
            return {
                labels: MergedEstimate(expectation, variance, self.total)
                for labels, (expectation, variance) in results.items()
            }
        merged: dict[tuple, list[float]] = {}
        for shard, narrowed in zip(
            self.shards, self.shard_conjunctions(predicate)
        ):
            if narrowed is None:
                continue
            for labels, estimate in shard.group_by(attrs, narrowed).items():
                cell = merged.setdefault(labels, [0.0, 0.0])
                cell[0] += estimate.expectation
                cell[1] += estimate.variance
        return {
            labels: MergedEstimate(expectation, variance, self.total)
            for labels, (expectation, variance) in merged.items()
        }

    def sum_estimate(
        self,
        attr,
        weights: np.ndarray,
        predicate: Conjunction | None = None,
        use_arena: bool = True,
    ) -> float:
        """Merged ``E[SUM(w(attr))]`` — per-shard sums add by linearity."""
        pos = self.schema.position(attr)
        if use_arena:
            return self.arena.sum_estimate(
                pos, weights, self._query_masks(predicate)
            )
        total = 0.0
        for shard, narrowed in zip(
            self.shards, self.shard_conjunctions(predicate)
        ):
            if narrowed is None:
                continue
            total += shard.engine.sum_estimate(pos, weights, narrowed)
        return total

    def avg_estimate(
        self,
        attr,
        weights: np.ndarray,
        predicate: Conjunction | None = None,
    ) -> float:
        """Merged AVG: ratio of the merged SUM and COUNT expectations."""
        total = self.sum_estimate(attr, weights, predicate)
        count = (
            self.estimate(predicate).expectation
            if predicate is not None and not predicate.is_trivial()
            else float(self.total)
        )
        if count <= 0:
            raise QueryError("AVG undefined: predicate has expected count 0")
        return total / count

    # -- persistence -----------------------------------------------------
    def save(self, prefix) -> None:
        """Write ``<prefix>.json`` (shard manifest) plus one
        ``<prefix>-shard<i>.(json|npz)`` pair per shard."""
        prefix = Path(prefix)
        prefix.parent.mkdir(parents=True, exist_ok=True)
        manifest = {
            "kind": "sharded",
            "name": self.name,
            "total": self.total,
            "num_shards": self.num_shards,
            "shard_by": self.shard_by,
            "ranges": (
                None
                if self._owned is None
                else [[owned.low, owned.high] for owned in self._owned]
            ),
        }
        prefix.with_suffix(".json").write_text(json.dumps(manifest))
        for index, shard in enumerate(self.shards):
            shard.save(shard_prefix(prefix, index))

    @classmethod
    def load(cls, prefix) -> "ShardedSummary":
        """Inverse of :meth:`save`."""
        prefix = Path(prefix)
        manifest = json.loads(prefix.with_suffix(".json").read_text())
        if manifest.get("kind") != "sharded":
            raise ReproError(
                f"{prefix} is not a sharded summary; use EntropySummary.load "
                "or repro.core.sharding.load_model"
            )
        shards = [
            EntropySummary.load(shard_prefix(prefix, index))
            for index in range(manifest["num_shards"])
        ]
        return cls(
            shards,
            name=manifest["name"],
            shard_by=manifest["shard_by"],
            ranges=manifest["ranges"],
        ).warm()

    def __repr__(self):
        by = f", by={self.shard_by!r}" if self.shard_by else ""
        return (
            f"ShardedSummary({self.name!r}, shards={self.num_shards}{by}, "
            f"n={self.total}, stats={self.num_statistics})"
        )


def shard_prefix(prefix, index: int) -> Path:
    """File prefix of shard ``index`` under a sharded model prefix."""
    prefix = Path(prefix)
    return prefix.parent / f"{prefix.name}-shard{index}"


def load_model(prefix) -> "EntropySummary | ShardedSummary":
    """Load whichever summary kind ``prefix`` holds.

    Dispatches on the ``kind`` marker in ``<prefix>.json``: sharded
    manifests load as :class:`ShardedSummary`, everything else as a
    plain :class:`EntropySummary`.
    """
    prefix = Path(prefix)
    path = prefix.with_suffix(".json")
    if not path.exists():
        raise ReproError(f"no summary at {prefix}(.json)")
    document = json.loads(path.read_text())
    if isinstance(document, dict) and document.get("kind") == "sharded":
        return ShardedSummary.load(prefix)
    return EntropySummary.load(prefix)
