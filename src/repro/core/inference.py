"""Query answering over a fitted MaxEnt model (Sec 3.2 and 4.2).

The optimized route of Sec 4.2 is the only one used at query time:

    E[⟨q, I⟩]  =  (n / P)  ·  P[ α_j ← 0  for excluded 1D variables ]

i.e. zero the 1D variables whose values fail the query predicate and
re-evaluate the compressed polynomial.  ``n / P`` is precomputed once
per model.

Beyond the paper's point estimates, this module implements the Sec 7
extension: under the model, a counting query's answer is
``Binomial(n, p)`` with ``p = P[masked]/P`` (each of the ``n`` i.i.d.
slotted rows lands in the query region with probability ``p``), giving
closed-form variance and confidence intervals.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.polynomial import CompressedPolynomial
from repro.core.variables import ModelParameters
from repro.errors import QueryError, SolverError
from repro.stats.predicates import Conjunction

#: two-sided 95% normal quantile for confidence intervals.
_Z95 = 1.959963984540054


class QueryEstimate:
    """Approximate answer to one counting query."""

    __slots__ = ("expectation", "probability", "total")

    def __init__(self, expectation: float, probability: float, total: int):
        self.expectation = expectation
        self.probability = probability
        self.total = total

    @property
    def variance(self) -> float:
        """Binomial variance ``n·p·(1−p)`` under the model."""
        p = self.probability
        return self.total * p * (1.0 - p)

    @property
    def std(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% interval, clipped to ``[0, n]``."""
        half = _Z95 * self.std
        return (
            max(self.expectation - half, 0.0),
            min(self.expectation + half, float(self.total)),
        )

    @property
    def rounded(self) -> int:
        """Paper-style rounding: values ≥ .5 round up (Sec 4.3's
        discussion of estimates near 0.5)."""
        return round_half_up(self.expectation)

    def __repr__(self):
        return (
            f"QueryEstimate({self.expectation:.3f} ± {self.std:.3f}, "
            f"n={self.total})"
        )


def round_half_up(value: float) -> int:
    """Round with halves going up (Python's ``round`` is banker's)."""
    return int(math.floor(value + 0.5))


class InferenceEngine:
    """Binds a polynomial to fitted parameters and answers queries.

    Repeated queries are served from a bounded cache keyed by the
    per-attribute masks (interactive exploration re-asks the same
    predicates constantly; parameters are fixed after fitting, so
    cached answers stay valid for the engine's lifetime).
    """

    def __init__(
        self,
        polynomial: CompressedPolynomial,
        params: ModelParameters,
        total: int,
        cache_size: int = 4096,
    ):
        self.polynomial = polynomial
        self.params = params
        self.total = int(total)
        self._full_value = polynomial.evaluate(params)
        if self._full_value <= 0:
            raise SolverError(
                "fitted polynomial evaluates to 0; the model is degenerate"
            )
        self._scale = self.total / self._full_value
        self._cache: dict[tuple, float] = {}
        self._cache_size = max(int(cache_size), 0)
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def partition_value(self) -> float:
        """``P`` at the fitted parameters (``Z = P^n`` by Lemma 3.1)."""
        return self._full_value

    # ------------------------------------------------------------------
    def masks_for(self, predicate: Conjunction) -> dict[int, np.ndarray]:
        """Per-position value masks of a conjunction."""
        if predicate.schema != self.polynomial.schema:
            raise QueryError("query predicate uses a different schema")
        masks = {}
        for pos in predicate.constrained_positions:
            masks[pos] = predicate.predicate_at(pos).mask(
                self.polynomial.sizes[pos]
            )
        return masks

    def clear_cache(self) -> None:
        """Drop all cached masked evaluations (and reset the counters)."""
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    @staticmethod
    def _cache_key(masks: Mapping[int, np.ndarray]) -> tuple:
        return tuple(
            (pos, np.asarray(masks[pos], dtype=bool).tobytes())
            for pos in sorted(masks)
        )

    def _wrap(self, masked_value: float) -> QueryEstimate:
        probability = masked_value / self._full_value
        return QueryEstimate(
            masked_value * self._scale,
            min(max(probability, 0.0), 1.0),
            self.total,
        )

    def estimate_masks(self, masks: Mapping[int, np.ndarray]) -> QueryEstimate:
        """Estimate a counting query given raw per-position masks."""
        key = self._cache_key(masks)
        masked_value = self._cache.get(key)
        if masked_value is None:
            self.cache_misses += 1
            # The masked polynomial is a sum of non-negative monomials;
            # tiny negatives are inclusion/exclusion cancellation noise.
            masked_value = max(self.polynomial.evaluate(self.params, masks), 0.0)
            if self._cache_size:
                if len(self._cache) >= self._cache_size:
                    self._cache.clear()
                self._cache[key] = masked_value
        else:
            self.cache_hits += 1
        return self._wrap(masked_value)

    def estimate(self, predicate: Conjunction) -> QueryEstimate:
        """Estimate ``SELECT COUNT(*) WHERE predicate``."""
        return self.estimate_masks(self.masks_for(predicate))

    def estimate_masks_batch(
        self, masks_list: Sequence[Mapping[int, np.ndarray]]
    ) -> list[QueryEstimate]:
        """Estimate many counting queries in one vectorized pass.

        Cached queries are answered from the cache; all remaining masked
        evaluations run through a single
        :meth:`~repro.core.polynomial.CompressedPolynomial.evaluate_batch`
        call, which is substantially faster than per-query evaluation
        for interactive batches (``run_many``, workload scoring).
        """
        keys = [self._cache_key(masks) for masks in masks_list]
        values: list[float | None] = [self._cache.get(key) for key in keys]
        missing = [index for index, value in enumerate(values) if value is None]
        self.cache_hits += len(masks_list) - len(missing)
        self.cache_misses += len(missing)
        if missing:
            batch_values = self.polynomial.evaluate_batch(
                self.params, [masks_list[index] for index in missing]
            )
            for index, raw in zip(missing, batch_values.tolist()):
                masked_value = max(raw, 0.0)
                values[index] = masked_value
                if self._cache_size:
                    if len(self._cache) >= self._cache_size:
                        self._cache.clear()
                    self._cache[keys[index]] = masked_value
        return [self._wrap(value) for value in values]

    def estimate_batch(
        self, predicates: Sequence[Conjunction]
    ) -> list[QueryEstimate]:
        """Batched :meth:`estimate` — one polynomial pass for the whole
        list of conjunctions."""
        return self.estimate_masks_batch(
            [self.masks_for(predicate) for predicate in predicates]
        )

    # ------------------------------------------------------------------
    def group_by(
        self,
        group_positions: Sequence[int],
        predicate: Conjunction | None = None,
    ) -> dict[tuple[int, ...], QueryEstimate]:
        """Estimates for every value combination of the group attributes.

        For the last group attribute the whole value vector comes from
        a single gradient pass (``E[A=v ∧ ρ] = n α_v ∂P[masked]/∂α_v / P``,
        Eq. 19 batched over ``v``); outer group attributes are iterated.
        """
        positions = [self.polynomial.schema.position(pos) for pos in group_positions]
        if not positions:
            raise QueryError("group_by needs at least one attribute")
        if len(set(positions)) != len(positions):
            raise QueryError("duplicate group-by attribute")
        base_masks = dict(self.masks_for(predicate)) if predicate else {}
        # Filter-then-group: a predicate on a group attribute restricts
        # which of its values appear as groups (standard SQL semantics).
        allowed: dict[int, np.ndarray] = {}
        for pos in positions:
            mask = base_masks.pop(pos, None)
            if mask is not None:
                allowed[pos] = np.asarray(mask, dtype=bool)
        *outer, inner = positions
        results: dict[tuple[int, ...], QueryEstimate] = {}
        self._group_recurse(outer, inner, base_masks, (), results, allowed)
        return results

    def _group_recurse(self, outer, inner, masks, prefix, results, allowed):
        if not outer:
            inner_allowed = allowed.get(inner)
            for value, estimate in enumerate(self._inner_group(inner, masks)):
                if inner_allowed is not None and not inner_allowed[value]:
                    continue
                results[prefix + (value,)] = estimate
            return
        pos, *rest = outer
        size = self.polynomial.sizes[pos]
        if pos in allowed:
            values = np.flatnonzero(allowed[pos]).tolist()
        else:
            values = range(size)
        for value in values:
            mask = np.zeros(size, dtype=bool)
            mask[value] = True
            masks[pos] = mask
            self._group_recurse(rest, inner, masks, prefix + (value,), results, allowed)
        del masks[pos]

    def _inner_group(self, pos: int, masks) -> list[QueryEstimate]:
        parts = self.polynomial.evaluation_parts(self.params, masks)
        gradient = self.polynomial.attribute_gradient(parts, pos)
        numerators = self.params.alphas[pos] * gradient
        estimates = []
        for numerator in numerators.tolist():
            probability = numerator / self._full_value
            estimates.append(
                QueryEstimate(
                    numerator * self._scale,
                    min(max(probability, 0.0), 1.0),
                    self.total,
                )
            )
        return estimates

    # ------------------------------------------------------------------
    def sum_estimate(
        self,
        pos: int,
        weights: np.ndarray,
        predicate: Conjunction | None = None,
    ) -> float:
        """``E[Σ_{rows ⊨ π} w(A_pos)]`` — a weighted linear query.

        SUM over a numeric attribute is the linear query whose
        coordinate on tuple ``t`` is ``w(t_pos)``; by linearity of
        expectation it decomposes over the attribute's values:
        ``Σ_v w_v · E[A = v ∧ π]``, one gradient pass (Sec 7's
        "other aggregates" extension).
        """
        pos = self.polynomial.schema.position(pos)
        weights = np.asarray(weights, dtype=float)
        if weights.shape[0] != self.polynomial.sizes[pos]:
            raise QueryError(
                f"need one weight per domain value of attribute {pos}"
            )
        masks = dict(self.masks_for(predicate)) if predicate else {}
        attr_mask = masks.pop(pos, None)
        parts = self.polynomial.evaluation_parts(self.params, masks)
        gradient = self.polynomial.attribute_gradient(parts, pos)
        counts = self.params.alphas[pos] * gradient * self._scale
        if attr_mask is not None:
            counts = np.where(np.asarray(attr_mask, dtype=bool), counts, 0.0)
        return float(np.dot(weights, np.clip(counts, 0.0, None)))

    def avg_estimate(
        self,
        pos: int,
        weights: np.ndarray,
        predicate: Conjunction | None = None,
    ) -> float:
        """``E[SUM] / E[COUNT]`` — the ratio-of-expectations estimator
        for AVG (the same estimator samplers use)."""
        total = self.sum_estimate(pos, weights, predicate)
        count = (
            self.estimate(predicate).expectation
            if predicate is not None
            else float(self.total)
        )
        if count <= 0:
            raise QueryError("AVG undefined: predicate has expected count 0")
        return total / count

    # ------------------------------------------------------------------
    def point_estimate(self, values: Mapping) -> QueryEstimate:
        """Estimate a point query ``∧ A_i = v_i`` given a mapping from
        attribute (name or position) to a domain *index*."""
        masks = {}
        for attr, index in values.items():
            pos = self.polynomial.schema.position(attr)
            size = self.polynomial.sizes[pos]
            if not 0 <= index < size:
                raise QueryError(
                    f"value index {index} out of range for attribute {attr!r}"
                )
            mask = np.zeros(size, dtype=bool)
            mask[index] = True
            masks[pos] = mask
        return self.estimate_masks(masks)
