"""Hierarchical summaries (Sec 7 future work: "hierarchical polynomials").

The paper proposes handling large categorical domains without global
bucketization by *layering* summaries: a coarse summary over grouped
values (cities → states) answers most queries, and per-group fine
summaries are built lazily when a query drills below the coarse level
— "this may require the user to wait while a new polynomial is being
loaded but would allow for different levels of query accuracy without
sacrificing polynomial size".

:class:`HierarchicalSummary` implements exactly that two-level scheme
for one *drill attribute*:

* level 0 — an :class:`~repro.core.summary.EntropySummary` over the
  relation with the drill attribute coarsened through a user-supplied
  grouping function;
* level 1 — for each coarse group, a summary over only that group's
  rows with the drill attribute at full resolution, built on first use
  and cached.

Queries that do not constrain the drill attribute (or constrain it
only at group granularity) never touch level 1.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.core.inference import QueryEstimate
from repro.core.summary import EntropySummary
from repro.data.domain import Domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError, SchemaError
from repro.stats.predicates import Conjunction, conjunction_from_masks


class HierarchicalSummary:
    """Two-level coarse/fine summary over one drill attribute.

    Parameters
    ----------
    relation:
        The fine-grained data.
    drill_attr:
        Attribute whose domain is large; queried at either granularity.
    coarsen:
        Maps each fine label of the drill attribute to its coarse group
        label (e.g. city → state).
    coarse_kwargs / leaf_kwargs:
        Options forwarded to
        :meth:`~repro.api.builder.SummaryBuilder.with_options` for the
        level-0 and level-1 models (budgets, iterations, ...).
    """

    def __init__(
        self,
        relation: Relation,
        drill_attr,
        coarsen: Callable,
        coarse_kwargs: Mapping | None = None,
        leaf_kwargs: Mapping | None = None,
    ):
        self.relation = relation
        self.fine_schema = relation.schema
        self.drill_pos = self.fine_schema.position(drill_attr)
        self.coarsen = coarsen
        self.leaf_kwargs = dict(leaf_kwargs or {})
        coarse_kwargs = dict(coarse_kwargs or {})

        fine_domain = self.fine_schema.domain(self.drill_pos)
        self._group_of_index = np.empty(fine_domain.size, dtype=object)
        groups: dict[object, list[int]] = {}
        for index, label in enumerate(fine_domain.labels):
            group = coarsen(label)
            self._group_of_index[index] = group
            groups.setdefault(group, []).append(index)
        if len(groups) < 2:
            raise SchemaError(
                "coarsening must produce at least two groups; otherwise a "
                "flat summary is strictly better"
            )
        self._fine_indices_of_group = groups
        group_labels = sorted(groups, key=str)
        # The coarse domain keeps the attribute's name so user-supplied
        # build kwargs (2D pairs etc.) read naturally at both levels.
        self._coarse_domain = Domain(fine_domain.name, group_labels)
        self._coarse_index_of_group = {
            label: index for index, label in enumerate(group_labels)
        }

        coarse_schema = Schema(
            [
                self._coarse_domain if pos == self.drill_pos else domain
                for pos, domain in enumerate(self.fine_schema.domains)
            ]
        )
        coarse_column = np.asarray(
            [
                self._coarse_index_of_group[self._group_of_index[index]]
                for index in relation.column(self.drill_pos).tolist()
            ],
            dtype=np.int64,
        )
        coarse_relation = Relation(
            coarse_schema,
            [
                coarse_column if pos == self.drill_pos else relation.column(pos)
                for pos in range(coarse_schema.num_attributes)
            ],
        )
        self.coarse = self._fit(coarse_relation, "coarse", coarse_kwargs)
        self._leaves: dict[object, EntropySummary | None] = {}
        self.leaf_builds = 0

    @staticmethod
    def _fit(relation: Relation, name: str, options: Mapping) -> EntropySummary:
        # Imported here: the api package sits above core in the layering.
        from repro.api.builder import SummaryBuilder

        return (
            SummaryBuilder(relation).name(name).with_options(**options).fit()
        )

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return self._coarse_domain.size

    def leaf(self, group) -> EntropySummary | None:
        """The fine summary of one group, built on first use.

        Returns ``None`` for groups with no rows (their contribution to
        any count is exactly 0).
        """
        if group not in self._fine_indices_of_group:
            raise QueryError(f"unknown group {group!r}")
        if group not in self._leaves:
            fine_indices = self._fine_indices_of_group[group]
            keep = np.zeros(
                self.fine_schema.domain(self.drill_pos).size, dtype=bool
            )
            keep[fine_indices] = True
            rows = self.relation.filter({self.drill_pos: keep})
            if rows.num_rows == 0:
                self._leaves[group] = None
            else:
                leaf_domain = Domain(
                    self.fine_schema.domain(self.drill_pos).name,
                    [
                        self.fine_schema.domain(self.drill_pos).label_of(i)
                        for i in fine_indices
                    ],
                )
                leaf_schema = Schema(
                    [
                        leaf_domain if pos == self.drill_pos else domain
                        for pos, domain in enumerate(self.fine_schema.domains)
                    ]
                )
                remap = {old: new for new, old in enumerate(fine_indices)}
                drill_column = np.asarray(
                    [remap[v] for v in rows.column(self.drill_pos).tolist()],
                    dtype=np.int64,
                )
                leaf_relation = Relation(
                    leaf_schema,
                    [
                        drill_column if pos == self.drill_pos else rows.column(pos)
                        for pos in range(leaf_schema.num_attributes)
                    ],
                )
                self._leaves[group] = self._fit(
                    leaf_relation, f"leaf-{group}", self.leaf_kwargs
                )
                self.leaf_builds += 1
        return self._leaves[group]

    # ------------------------------------------------------------------
    def count(self, predicate: Conjunction) -> QueryEstimate:
        """Estimate a counting query over the *fine* schema.

        Routes to the coarse model when the drill attribute is
        unconstrained or its constraint is a union of whole groups;
        otherwise drills into the touched groups' leaf summaries.
        """
        if predicate.schema != self.fine_schema:
            raise QueryError("predicate must use the fine schema")
        drill_predicate = predicate.predicate_at(self.drill_pos)
        other_masks = {
            pos: predicate.predicate_at(pos).mask(
                self.fine_schema.domain(pos).size
            )
            for pos in predicate.constrained_positions
            if pos != self.drill_pos
        }
        if drill_predicate.is_true:
            return self.coarse.count(
                self._coarse_conjunction(other_masks, None)
            )
        fine_mask = drill_predicate.mask(
            self.fine_schema.domain(self.drill_pos).size
        )
        touched = self._touched_groups(fine_mask)
        whole = [
            group
            for group, partial in touched.items()
            if not partial
        ]
        if len(whole) == len(touched):
            group_mask = np.zeros(self.num_groups, dtype=bool)
            for group in whole:
                group_mask[self._coarse_index_of_group[group]] = True
            return self.coarse.count(
                self._coarse_conjunction(other_masks, group_mask)
            )
        # Drill: sum leaf estimates over every touched group.
        expectation = 0.0
        variance = 0.0
        for group in touched:
            leaf = self.leaf(group)
            if leaf is None:
                continue
            leaf_masks = dict(other_masks)
            fine_indices = self._fine_indices_of_group[group]
            leaf_masks[self.drill_pos] = fine_mask[fine_indices]
            if not leaf_masks[self.drill_pos].any():
                continue
            estimate = leaf.count(
                conjunction_from_masks(leaf.schema, leaf_masks)
            )
            expectation += estimate.expectation
            variance += estimate.variance
        total = self.relation.num_rows
        probability = min(max(expectation / total, 0.0), 1.0) if total else 0.0
        # Leaf models are independent; report the summed-variance
        # binomial-equivalent estimate.
        return QueryEstimate(expectation, probability, total)

    # ------------------------------------------------------------------
    def _touched_groups(self, fine_mask: np.ndarray) -> dict[object, bool]:
        """Groups whose fine values the mask selects; value records
        whether the selection is *partial* (needs a leaf)."""
        touched: dict[object, bool] = {}
        for group, fine_indices in self._fine_indices_of_group.items():
            selected = fine_mask[fine_indices]
            if selected.any():
                touched[group] = not selected.all()
        if not touched:
            raise QueryError("predicate selects no drill-attribute value")
        return touched

    def _coarse_conjunction(self, other_masks, group_mask) -> Conjunction:
        masks = dict(other_masks)
        if group_mask is not None:
            masks[self.drill_pos] = group_mask
        return conjunction_from_masks(self.coarse.schema, masks)

    def __repr__(self):
        return (
            f"HierarchicalSummary(groups={self.num_groups}, "
            f"leaves_built={self.leaf_builds})"
        )
