"""EntropyDB summaries: build → fit → query → persist.

An :class:`EntropySummary` is the user-facing object of the library: it
owns the statistic set Φ, the compressed polynomial, the fitted
parameters, and an :class:`~repro.core.inference.InferenceEngine`.  The
paper stores the variables in Postgres and the factorization in a text
file (Sec 5); we persist both to a JSON + NPZ pair.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.inference import InferenceEngine, QueryEstimate
from repro.core.polynomial import CompressedPolynomial, check_parameter_shapes
from repro.core.solver import MirrorDescentSolver, SolverReport
from repro.core.variables import ModelParameters
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.data.serialize import decode_schema, encode_schema
from repro.stats.predicates import Conjunction, RangePredicate
from repro.stats.statistic import Statistic, StatisticSet


class EntropySummary:
    """A query-able probabilistic summary of one relation."""

    def __init__(
        self,
        statistic_set: StatisticSet,
        polynomial: CompressedPolynomial,
        params: ModelParameters,
        report: SolverReport | None = None,
        name: str = "summary",
    ):
        check_parameter_shapes(polynomial, params)
        self.statistic_set = statistic_set
        self.polynomial = polynomial
        self.params = params
        self.report = report
        self.name = name
        self.engine = InferenceEngine(polynomial, params, statistic_set.total)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        relation: Relation,
        pairs: Sequence[tuple] | None = None,
        per_pair_budget: int | None = None,
        budget: int = 0,
        num_pairs: int = 0,
        strategy: str = "cover",
        heuristic: str = "composite",
        exclude_attrs: Sequence = (),
        max_iterations: int = 30,
        threshold: float = 1e-6,
        name: str = "summary",
        seed: int = 0,
    ) -> "EntropySummary":
        """Deprecated shim — use :class:`repro.api.SummaryBuilder`.

        Kept for backward compatibility with pre-1.1 call sites; the
        builder validates each option as it is set and reads fluently::

            SummaryBuilder(relation).pairs(("a", "b")).per_pair_budget(8).fit()
        """
        import warnings

        warnings.warn(
            "EntropySummary.build() is deprecated; use "
            "repro.api.SummaryBuilder(relation)....fit() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.builder import SummaryBuilder

        return (
            SummaryBuilder(relation)
            .with_options(
                pairs=pairs,
                per_pair_budget=per_pair_budget,
                budget=budget,
                num_pairs=num_pairs,
                strategy=strategy,
                heuristic=heuristic,
                exclude_attrs=exclude_attrs,
                max_iterations=max_iterations,
                threshold=threshold,
                name=name,
                seed=seed,
            )
            .fit()
        )

    @classmethod
    def from_statistics(
        cls,
        statistic_set: StatisticSet,
        max_iterations: int = 30,
        threshold: float = 1e-6,
        name: str = "summary",
    ) -> "EntropySummary":
        """Fit a summary from an already-assembled statistic set."""
        polynomial = CompressedPolynomial(statistic_set)
        solver = MirrorDescentSolver(
            polynomial, max_iterations=max_iterations, threshold=threshold
        )
        params, report = solver.solve()
        return cls(statistic_set, polynomial, params, report, name)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self.statistic_set.schema

    @property
    def total(self) -> int:
        return self.statistic_set.total

    def count(self, predicate: Conjunction) -> QueryEstimate:
        """Estimate ``SELECT COUNT(*) WHERE predicate``."""
        return self.engine.estimate(predicate)

    def count_labels(self, values: Mapping) -> QueryEstimate:
        """Point-query convenience: attribute → *label* equality."""
        indexed = {}
        for attr, label in values.items():
            pos = self.schema.position(attr)
            indexed[pos] = self.schema.domain(pos).index_of(label)
        return self.engine.point_estimate(indexed)

    def group_by(
        self,
        attrs: Sequence,
        predicate: Conjunction | None = None,
    ) -> dict[tuple, QueryEstimate]:
        """Model-side GROUP BY COUNT(*) over attribute labels."""
        positions = [self.schema.position(attr) for attr in attrs]
        raw = self.engine.group_by(positions, predicate)
        domains = [self.schema.domain(pos) for pos in positions]
        return {
            tuple(domain.label_of(index) for domain, index in zip(domains, key)): value
            for key, value in raw.items()
        }

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def size_report(self) -> dict:
        """Polynomial and parameter storage footprint."""
        report = self.polynomial.size_report()
        report["parameter_bytes"] = sum(
            alpha.nbytes for alpha in self.params.alphas
        ) + self.params.deltas.nbytes
        term_bytes = 0
        for component in self.polynomial.components:
            for pos in component.positions:
                term_bytes += component.lo[pos].nbytes + component.hi[pos].nbytes
            term_bytes += component.stat_ids.nbytes + component.stat_indptr.nbytes
        report["term_bytes"] = term_bytes
        report["total_bytes"] = report["parameter_bytes"] + term_bytes
        return report

    @property
    def num_statistics(self) -> int:
        """Statistic count |Φ| (uniform across summary kinds)."""
        return self.statistic_set.num_statistics

    def clear_cache(self) -> None:
        """Drop the inference engine's masked-evaluation cache."""
        self.engine.clear_cache()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[dict, dict]:
        """Portable in-memory form: ``(document, arrays)``.

        ``document`` is JSON-safe (statistics, schema); ``arrays`` maps
        names to numpy arrays (fitted parameters).  This is the currency
        of both :meth:`save` and the sharded build's worker processes.
        """
        document = {
            "name": self.name,
            "total": self.statistic_set.total,
            "schema": encode_schema(self.schema),
            "one_dim": [list(counts) for counts in self.statistic_set.one_dim],
            "multi_dim": [
                _encode_statistic(statistic)
                for statistic in self.statistic_set.multi_dim
            ],
        }
        return document, self.params.to_arrays()

    @classmethod
    def from_payload(cls, document: dict, arrays: Mapping) -> "EntropySummary":
        """Inverse of :meth:`to_payload`; rebuilds the polynomial from
        the statistics and reattaches the fitted parameters."""
        schema = decode_schema(document["schema"])
        statistic_set = StatisticSet(
            schema,
            document["total"],
            document["one_dim"],
        )
        for encoded in document["multi_dim"]:
            statistic_set.add_multi_dim(_decode_statistic(schema, encoded))
        params = ModelParameters.from_arrays(dict(arrays))
        polynomial = CompressedPolynomial(statistic_set)
        return cls(statistic_set, polynomial, params, None, document["name"])

    def save(self, prefix) -> None:
        """Write ``<prefix>.json`` (statistics) + ``<prefix>.npz``
        (parameters)."""
        prefix = Path(prefix)
        prefix.parent.mkdir(parents=True, exist_ok=True)
        document, arrays = self.to_payload()
        prefix.with_suffix(".json").write_text(json.dumps(document))
        np.savez_compressed(prefix.with_suffix(".npz"), **arrays)

    @classmethod
    def load(cls, prefix) -> "EntropySummary":
        """Inverse of :meth:`save`."""
        prefix = Path(prefix)
        document = json.loads(prefix.with_suffix(".json").read_text())
        with np.load(prefix.with_suffix(".npz")) as arrays:
            return cls.from_payload(document, dict(arrays))

    def __repr__(self):
        return (
            f"EntropySummary({self.name!r}, n={self.total}, "
            f"stats={self.statistic_set.num_statistics}, "
            f"terms={self.polynomial.num_terms})"
        )


# ----------------------------------------------------------------------
# Statistic serialization (schemas/labels live in repro.data.serialize)
# ----------------------------------------------------------------------

def _encode_statistic(statistic: Statistic):
    return {
        "value": statistic.value,
        "ranges": [
            [pos, statistic.range_at(pos).low, statistic.range_at(pos).high]
            for pos in statistic.positions
        ],
    }


def _decode_statistic(schema: Schema, encoded) -> Statistic:
    predicate = Conjunction(
        schema,
        {
            pos: RangePredicate(low, high)
            for pos, low, high in encoded["ranges"]
        },
    )
    return Statistic(predicate, encoded["value"])
