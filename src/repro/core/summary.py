"""EntropyDB summaries: build → fit → query → persist.

An :class:`EntropySummary` is the user-facing object of the library: it
owns the statistic set Φ, the compressed polynomial, the fitted
parameters, and an :class:`~repro.core.inference.InferenceEngine`.  The
paper stores the variables in Postgres and the factorization in a text
file (Sec 5); we persist both to a JSON + NPZ pair.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.inference import InferenceEngine, QueryEstimate
from repro.core.polynomial import CompressedPolynomial, check_parameter_shapes
from repro.core.solver import MirrorDescentSolver, SolverReport
from repro.core.variables import ModelParameters
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.data.serialize import decode_schema, encode_schema
from repro.errors import ReproError
from repro.stats.predicates import Conjunction, RangePredicate
from repro.stats.statistic import Statistic, StatisticSet


class EntropySummary:
    """A query-able probabilistic summary of one relation."""

    def __init__(
        self,
        statistic_set: StatisticSet,
        polynomial: CompressedPolynomial,
        params: ModelParameters,
        report: SolverReport | None = None,
        name: str = "summary",
    ):
        check_parameter_shapes(polynomial, params)
        self.statistic_set = statistic_set
        self.polynomial = polynomial
        self.params = params
        self.report = report
        self.name = name
        self.engine = InferenceEngine(polynomial, params, statistic_set.total)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        relation: Relation,
        pairs: Sequence[tuple] | None = None,
        per_pair_budget: int | None = None,
        budget: int = 0,
        num_pairs: int = 0,
        strategy: str = "cover",
        heuristic: str = "composite",
        exclude_attrs: Sequence = (),
        max_iterations: int = 30,
        threshold: float = 1e-6,
        name: str = "summary",
        seed: int = 0,
    ) -> "EntropySummary":
        """Deprecated shim — use :class:`repro.api.SummaryBuilder`.

        Kept for backward compatibility with pre-1.1 call sites; the
        builder validates each option as it is set and reads fluently::

            SummaryBuilder(relation).pairs(("a", "b")).per_pair_budget(8).fit()
        """
        import warnings

        warnings.warn(
            "EntropySummary.build() is deprecated; use "
            "repro.api.SummaryBuilder(relation)....fit() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.builder import SummaryBuilder

        return (
            SummaryBuilder(relation)
            .with_options(
                pairs=pairs,
                per_pair_budget=per_pair_budget,
                budget=budget,
                num_pairs=num_pairs,
                strategy=strategy,
                heuristic=heuristic,
                exclude_attrs=exclude_attrs,
                max_iterations=max_iterations,
                threshold=threshold,
                name=name,
                seed=seed,
            )
            .fit()
        )

    @classmethod
    def from_statistics(
        cls,
        statistic_set: StatisticSet,
        max_iterations: int = 30,
        threshold: float = 1e-6,
        name: str = "summary",
        warm_start: ModelParameters | None = None,
    ) -> "EntropySummary":
        """Fit a summary from an already-assembled statistic set.

        ``warm_start`` seeds the solver with a previous solution instead
        of the uniform model — the ingest layer's delta refits converge
        in a fraction of the sweeps when the data changed a little.
        """
        polynomial = CompressedPolynomial(statistic_set)
        solver = MirrorDescentSolver(
            polynomial, max_iterations=max_iterations, threshold=threshold
        )
        params, report = solver.solve(params=warm_start)
        return cls(statistic_set, polynomial, params, report, name)

    # ------------------------------------------------------------------
    # Incremental maintenance (the ingest layer's primitives)
    # ------------------------------------------------------------------
    def refit(
        self,
        relation: Relation,
        max_iterations: int = 30,
        threshold: float = 1e-6,
        warm_start: bool = True,
    ) -> "EntropySummary":
        """Delta refit: same statistic *structure*, new data.

        Re-measures this summary's multi-dimensional statistics (and the
        complete 1D marginals) on ``relation``, then re-solves — by
        default **warm-starting** from the current fitted parameters, so
        an append that changed the data a little converges in a couple
        of Mirror Descent sweeps instead of a full cold solve.  The
        expensive statistic *selection* (correlation ranking, bucket
        heuristics) is skipped entirely: the bucket boundaries are
        reused as-is.

        ``relation.schema`` may be the summary's schema or a pure
        *widening* of it (same attributes, each domain's old labels kept
        as a prefix) — the domain-growth path of an append that
        introduced a previously unseen value.  Warm-start parameters for
        new domain values start at 0 (the exact solution while their
        count was 0).
        """
        schema = relation.schema
        if schema != self.schema:
            require_widened_schema(self.schema, schema)
        multi_dim = []
        for statistic in self.statistic_set.multi_dim:
            predicate = Conjunction(
                schema,
                {pos: statistic.range_at(pos) for pos in statistic.positions},
            )
            multi_dim.append(
                Statistic(
                    predicate,
                    float(relation.count_where(predicate.attribute_masks())),
                )
            )
        statistic_set = StatisticSet.from_relation(relation, multi_dim)
        seed = (
            pad_parameters(self.params, self.schema, schema)
            if warm_start
            else None
        )
        return EntropySummary.from_statistics(
            statistic_set,
            max_iterations=max_iterations,
            threshold=threshold,
            name=self.name,
            warm_start=seed,
        )

    def refit_appended(
        self,
        batch: Relation,
        max_iterations: int = 30,
        threshold: float = 1e-6,
        warm_start: bool = True,
    ) -> "EntropySummary":
        """Delta refit for an *append*: statistics update additively.

        Counting queries over disjoint row bags add, so the refreshed
        statistic values are ``old value + count over the batch`` and
        the marginals are ``old marginals (zero-padded under domain
        growth) + batch marginals`` — the measurement pass touches only
        the appended rows, O(batch) instead of O(shard).  Exactly
        equivalent to ``refit(base ⊎ batch)``; the solve itself is the
        same warm-started delta solve.
        """
        schema = batch.schema
        if schema != self.schema:
            require_widened_schema(self.schema, schema)
        one_dim = []
        for pos, counts in enumerate(self.statistic_set.one_dim):
            padded = np.zeros(schema.domain(pos).size)
            padded[: len(counts)] = counts
            one_dim.append(padded + batch.marginal(pos))
        multi_dim = []
        for statistic in self.statistic_set.multi_dim:
            predicate = Conjunction(
                schema,
                {pos: statistic.range_at(pos) for pos in statistic.positions},
            )
            multi_dim.append(
                Statistic(
                    predicate,
                    statistic.value
                    + batch.count_where(predicate.attribute_masks()),
                )
            )
        statistic_set = StatisticSet(
            schema,
            self.statistic_set.total + batch.num_rows,
            one_dim,
            multi_dim,
        )
        seed = (
            pad_parameters(self.params, self.schema, schema)
            if warm_start
            else None
        )
        return EntropySummary.from_statistics(
            statistic_set,
            max_iterations=max_iterations,
            threshold=threshold,
            name=self.name,
            warm_start=seed,
        )

    def migrated(self, schema: Schema) -> "EntropySummary":
        """Re-anchor this summary on a widened schema without re-solving.

        Used when *another* shard's append grew a domain: this shard's
        data did not change, so the old solution — padded with 0 for the
        new values (a ZERO statistic's exact fitted value) — answers
        every query identically.  Returns ``self`` when the schema is
        already current.
        """
        if schema == self.schema:
            return self
        require_widened_schema(self.schema, schema)
        one_dim = [
            list(counts) + [0.0] * (schema.domain(pos).size - len(counts))
            for pos, counts in enumerate(self.statistic_set.one_dim)
        ]
        multi_dim = [
            Statistic(
                Conjunction(
                    schema,
                    {
                        pos: statistic.range_at(pos)
                        for pos in statistic.positions
                    },
                ),
                statistic.value,
            )
            for statistic in self.statistic_set.multi_dim
        ]
        statistic_set = StatisticSet(
            schema, self.statistic_set.total, one_dim, multi_dim
        )
        polynomial = CompressedPolynomial(statistic_set)
        params = pad_parameters(self.params, self.schema, schema)
        return EntropySummary(
            statistic_set, polynomial, params, self.report, self.name
        )

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self.statistic_set.schema

    @property
    def total(self) -> int:
        return self.statistic_set.total

    def count(self, predicate: Conjunction) -> QueryEstimate:
        """Estimate ``SELECT COUNT(*) WHERE predicate``."""
        return self.engine.estimate(predicate)

    def count_labels(self, values: Mapping) -> QueryEstimate:
        """Point-query convenience: attribute → *label* equality."""
        indexed = {}
        for attr, label in values.items():
            pos = self.schema.position(attr)
            indexed[pos] = self.schema.domain(pos).index_of(label)
        return self.engine.point_estimate(indexed)

    def group_by(
        self,
        attrs: Sequence,
        predicate: Conjunction | None = None,
    ) -> dict[tuple, QueryEstimate]:
        """Model-side GROUP BY COUNT(*) over attribute labels."""
        positions = [self.schema.position(attr) for attr in attrs]
        raw = self.engine.group_by(positions, predicate)
        domains = [self.schema.domain(pos) for pos in positions]
        return {
            tuple(domain.label_of(index) for domain, index in zip(domains, key)): value
            for key, value in raw.items()
        }

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def size_report(self) -> dict:
        """Polynomial and parameter storage footprint."""
        report = self.polynomial.size_report()
        report["parameter_bytes"] = sum(
            alpha.nbytes for alpha in self.params.alphas
        ) + self.params.deltas.nbytes
        term_bytes = 0
        for component in self.polynomial.components:
            for pos in component.positions:
                term_bytes += component.lo[pos].nbytes + component.hi[pos].nbytes
            term_bytes += component.stat_ids.nbytes + component.stat_indptr.nbytes
        report["term_bytes"] = term_bytes
        report["total_bytes"] = report["parameter_bytes"] + term_bytes
        return report

    @property
    def num_statistics(self) -> int:
        """Statistic count |Φ| (uniform across summary kinds)."""
        return self.statistic_set.num_statistics

    def clear_cache(self) -> None:
        """Drop the inference engine's masked-evaluation cache."""
        self.engine.clear_cache()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[dict, dict]:
        """Portable in-memory form: ``(document, arrays)``.

        ``document`` is JSON-safe (statistics, schema); ``arrays`` maps
        names to numpy arrays (fitted parameters).  This is the currency
        of both :meth:`save` and the sharded build's worker processes.
        """
        document = {
            "name": self.name,
            "total": self.statistic_set.total,
            "schema": encode_schema(self.schema),
            "one_dim": [list(counts) for counts in self.statistic_set.one_dim],
            "multi_dim": [
                _encode_statistic(statistic)
                for statistic in self.statistic_set.multi_dim
            ],
        }
        return document, self.params.to_arrays()

    @classmethod
    def from_payload(cls, document: dict, arrays: Mapping) -> "EntropySummary":
        """Inverse of :meth:`to_payload`; rebuilds the polynomial from
        the statistics and reattaches the fitted parameters."""
        schema = decode_schema(document["schema"])
        statistic_set = StatisticSet(
            schema,
            document["total"],
            document["one_dim"],
        )
        for encoded in document["multi_dim"]:
            statistic_set.add_multi_dim(_decode_statistic(schema, encoded))
        params = ModelParameters.from_arrays(dict(arrays))
        polynomial = CompressedPolynomial(statistic_set)
        return cls(statistic_set, polynomial, params, None, document["name"])

    def save(self, prefix) -> None:
        """Write ``<prefix>.json`` (statistics) + ``<prefix>.npz``
        (parameters)."""
        prefix = Path(prefix)
        prefix.parent.mkdir(parents=True, exist_ok=True)
        document, arrays = self.to_payload()
        prefix.with_suffix(".json").write_text(json.dumps(document))
        np.savez_compressed(prefix.with_suffix(".npz"), **arrays)

    @classmethod
    def load(cls, prefix) -> "EntropySummary":
        """Inverse of :meth:`save`."""
        prefix = Path(prefix)
        document = json.loads(prefix.with_suffix(".json").read_text())
        with np.load(prefix.with_suffix(".npz")) as arrays:
            return cls.from_payload(document, dict(arrays))

    def __repr__(self):
        return (
            f"EntropySummary({self.name!r}, n={self.total}, "
            f"stats={self.statistic_set.num_statistics}, "
            f"terms={self.polynomial.num_terms})"
        )


# ----------------------------------------------------------------------
# Schema widening (domain growth during ingest)
# ----------------------------------------------------------------------

def require_widened_schema(old: Schema, new: Schema) -> None:
    """Raise unless ``new`` is ``old`` with zero or more labels appended
    to each domain (same attributes, same order, old labels kept as a
    prefix) — the only schema change the delta-refresh path supports."""
    if old.attribute_names != new.attribute_names:
        raise ReproError(
            "delta refresh cannot change the attribute set: summary has "
            f"{old.attribute_names}, relation has {new.attribute_names}"
        )
    for pos, (old_domain, new_domain) in enumerate(
        zip(old.domains, new.domains)
    ):
        if (
            new_domain.size < old_domain.size
            or new_domain.labels[: old_domain.size] != old_domain.labels
        ):
            raise ReproError(
                f"attribute {old.attribute_names[pos]!r}: delta refresh "
                "only supports appending new domain values; existing "
                "labels must keep their indices"
            )


def pad_parameters(
    params: ModelParameters, old: Schema, new: Schema
) -> ModelParameters:
    """Warm-start seed for a widened schema: each attribute's alpha
    array is extended with zeros for the new domain values (the exact
    fitted value while their observed count was 0); deltas are carried
    over unchanged."""
    if new == old:
        return params.copy()
    alphas = []
    for pos, alpha in enumerate(params.alphas):
        grown = new.domain(pos).size - alpha.shape[0]
        alphas.append(
            np.concatenate([alpha, np.zeros(grown)]) if grown else alpha.copy()
        )
    return ModelParameters(alphas, params.deltas.copy())


# ----------------------------------------------------------------------
# Statistic serialization (schemas/labels live in repro.data.serialize)
# ----------------------------------------------------------------------

def _encode_statistic(statistic: Statistic):
    return {
        "value": statistic.value,
        "ranges": [
            [pos, statistic.range_at(pos).low, statistic.range_at(pos).high]
            for pos in statistic.positions
        ],
    }


def _decode_statistic(schema: Schema, encoded) -> Statistic:
    predicate = Conjunction(
        schema,
        {
            pos: RangePredicate(low, high)
            for pos, low, high in encoded["ranges"]
        },
    )
    return Statistic(predicate, encoded["value"])
