"""MaxEnt core: the compressed polynomial, solvers, and inference."""

from repro.core.dual import dual_gradient, dual_value, solve_dual_scipy
from repro.core.hierarchy import HierarchicalSummary
from repro.core.inference import InferenceEngine, QueryEstimate, round_half_up
from repro.core.naive import NaivePolynomial
from repro.core.sharding import (
    MergedEstimate,
    Partition,
    ShardedSummary,
    load_model,
    partition_relation,
)
from repro.core.polynomial import (
    CompressedPolynomial,
    EvaluationParts,
    initial_parameters,
    masks_from_conjunction,
    product_excluding,
)
from repro.core.solver import MirrorDescentSolver, SolverReport, solve_statistics
from repro.core.summary import EntropySummary
from repro.core.terms import Component, build_components
from repro.core.variables import ModelParameters
from repro.core.worlds import (
    empirical_query_distribution,
    sample_world,
    sample_world_sequential,
)

__all__ = [
    "Component",
    "HierarchicalSummary",
    "CompressedPolynomial",
    "EntropySummary",
    "EvaluationParts",
    "InferenceEngine",
    "MergedEstimate",
    "MirrorDescentSolver",
    "ModelParameters",
    "NaivePolynomial",
    "Partition",
    "QueryEstimate",
    "ShardedSummary",
    "SolverReport",
    "build_components",
    "dual_gradient",
    "empirical_query_distribution",
    "load_model",
    "partition_relation",
    "sample_world",
    "sample_world_sequential",
    "dual_value",
    "initial_parameters",
    "masks_from_conjunction",
    "product_excluding",
    "round_half_up",
    "solve_dual_scipy",
    "solve_statistics",
]
