"""Mirror Descent solver for the MaxEnt model (Sec 3.3, Algorithm 1).

Each step picks one variable ``α_j`` and solves ``∂Ψ/∂α_j = 0`` in
closed form while all other variables stay fixed (Eq. 12):

    α_j  =  s_j (P − α_j P_{α_j})  /  ((n − s_j) P_{α_j})

Because ``P`` is linear in every variable, neither ``P − α_j P_{α_j}``
nor ``P_{α_j}`` depends on ``α_j``, and — by overcompleteness — the
partials of two 1D variables of the *same* attribute are mutually
independent.  The solver exploits both facts:

* one gradient pass per attribute yields ``P_{α_j}`` for all of its
  values simultaneously (a difference-array accumulation over terms),
  after which the per-value updates run with ``P`` maintained
  incrementally;
* multi-dimensional variables update one at a time through a per-term
  index, with component values maintained incrementally.

Statistics with ``s_j = 0`` pin their variable to exactly 0 — the
paper's ZERO-statistic observation (Sec 4.3) — and are never revisited.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.core.polynomial import (
    CompressedPolynomial,
    check_parameter_shapes,
    initial_parameters,
)
from repro.core.variables import ModelParameters
from repro.errors import SolverError

#: Updates stop moving a variable when its partial is this small; the
#: monomials containing it have vanished (another variable is 0).
_TINY_GRADIENT = 1e-300


class SolverReport:
    """Convergence trace of one solve."""

    def __init__(self):
        self.iterations = 0
        self.converged = False
        self.error_trace: list[float] = []
        self.seconds = 0.0
        #: True when the solve started from a previous solution instead
        #: of the uniform model (the ingest layer's delta refits).
        self.warm_started = False

    @property
    def final_error(self) -> float:
        return self.error_trace[-1] if self.error_trace else float("inf")

    def __repr__(self):
        warm = ", warm_started=True" if self.warm_started else ""
        return (
            f"SolverReport(iterations={self.iterations}, "
            f"converged={self.converged}, final_error={self.final_error:.3g}, "
            f"seconds={self.seconds:.2f}{warm})"
        )


class MirrorDescentSolver:
    """Coordinate Mirror Descent over the compressed polynomial.

    Parameters
    ----------
    polynomial:
        The compressed polynomial built from the statistic set to fit.
    max_iterations:
        Sweep budget; the paper uses 30 (Sec 6.1).
    threshold:
        Convergence threshold on ``max_j |s_j − E[⟨c_j,I⟩]| / n``.
    """

    def __init__(
        self,
        polynomial: CompressedPolynomial,
        max_iterations: int = 30,
        threshold: float = 1e-6,
    ):
        if max_iterations < 1:
            raise SolverError("max_iterations must be >= 1")
        self.polynomial = polynomial
        self.statistic_set = polynomial.statistic_set
        self.max_iterations = max_iterations
        self.threshold = threshold
        self._delta_plan = None

    # ------------------------------------------------------------------
    def _build_delta_plan(self):
        """Per-statistic index tables for the multi-dim sweep.

        For statistic ``j``: the rows of its component's term table that
        contain it, and a padded matrix of the *other* statistics in
        each of those terms.  Padding points at a sentinel slot whose
        ``δ − 1`` is 1, so ``Π (δ_other − 1)`` is one vectorized
        ``np.prod`` instead of a Python loop per term.
        """
        poly = self.polynomial
        sentinel = poly.num_deltas  # extra slot, value fixed at 2.0
        plan = []
        for stat_id in range(poly.num_deltas):
            component_index = poly.component_of_stat(stat_id)
            component = poly.components[component_index]
            terms = component.stat_terms.get(stat_id)
            if terms is None or terms.size == 0:
                plan.append(None)
                continue
            rows = terms.astype(np.int64)
            others = [
                [other for other in component.term_stats[term] if other != stat_id]
                for term in rows.tolist()
            ]
            width = max((len(row) for row in others), default=0)
            matrix = np.full((rows.size, max(width, 1)), sentinel, dtype=np.int64)
            for index, row in enumerate(others):
                matrix[index, : len(row)] = row
            plan.append((component_index, rows, matrix))
        return plan

    # ------------------------------------------------------------------
    def solve(
        self,
        params: ModelParameters | None = None,
        callback: Callable[[int, float], None] | None = None,
    ) -> tuple[ModelParameters, SolverReport]:
        """Fit the model; returns the parameters and a report."""
        poly = self.polynomial
        warm_started = params is not None
        if params is None:
            params = initial_parameters(poly)
        else:
            params = params.copy()
            check_parameter_shapes(poly, params)

        report = SolverReport()
        report.warm_started = warm_started
        start = time.perf_counter()
        for iteration in range(self.max_iterations):
            self._sweep_one_dim(params)
            self._sweep_multi_dim(params)
            error = self.max_constraint_error(params)
            report.error_trace.append(error)
            report.iterations = iteration + 1
            if callback is not None:
                callback(iteration, error)
            if error < self.threshold:
                report.converged = True
                break
        report.seconds = time.perf_counter() - start
        return params, report

    # ------------------------------------------------------------------
    def _sweep_one_dim(self, params: ModelParameters) -> None:
        poly = self.polynomial
        total = self.statistic_set.total
        for pos in range(poly.schema.num_attributes):
            parts = poly.evaluation_parts(params)
            gradient = poly.attribute_gradient(parts, pos)
            value = parts.value
            alpha = params.alphas[pos]
            targets = self.statistic_set.one_dim[pos]
            for index, target in enumerate(targets):
                grad = gradient[index]
                if target == 0.0:
                    value -= alpha[index] * grad
                    alpha[index] = 0.0
                    continue
                if grad <= _TINY_GRADIENT:
                    continue
                if target >= total:
                    # The value appears in every row; its siblings all
                    # have s = 0 and go to 0, which forces E = n.
                    continue
                rest = value - alpha[index] * grad
                if rest < 0.0:
                    rest = 0.0
                updated = target * rest / ((total - target) * grad)
                value = rest + updated * grad
                alpha[index] = updated
            if value <= 0.0:
                raise SolverError(
                    "polynomial collapsed to 0 during solving; statistics "
                    "are inconsistent with the cardinality"
                )

    def _sweep_multi_dim(self, params: ModelParameters) -> None:
        poly = self.polynomial
        if poly.num_deltas == 0:
            return
        if self._delta_plan is None:
            self._delta_plan = self._build_delta_plan()
        total = self.statistic_set.total
        parts = poly.evaluation_parts(params)
        component_values = list(parts.component_values)
        free_product = parts.free_product
        range_products = parts.range_products
        # Extended δ vector: the trailing sentinel slot keeps (δ−1) = 1
        # for the padding entries of the per-statistic index matrices.
        extended = np.append(params.deltas, 2.0)

        for stat_id, statistic in enumerate(self.statistic_set.multi_dim):
            plan = self._delta_plan[stat_id]
            if plan is None:
                continue
            component_index, rows, others = plan
            target = statistic.value
            # Gradient of Q_c w.r.t. δ: per term, drop its (δ−1) factor.
            dprod_excl = np.prod(extended[others] - 1.0, axis=1)
            term_excl = range_products[component_index][rows] * dprod_excl
            grad_q = float(term_excl.sum())
            outer = free_product
            for other_index, other_value in enumerate(component_values):
                if other_index != component_index:
                    outer *= other_value
            grad = grad_q * outer
            value = outer * component_values[component_index]

            old = float(extended[stat_id])
            if target == 0.0:
                updated = 0.0
            elif abs(grad) <= _TINY_GRADIENT or target >= total:
                continue
            else:
                rest = value - old * grad
                if rest < 0.0:
                    rest = 0.0
                updated = target * rest / ((total - target) * grad)
                if updated < 0.0:
                    updated = 0.0
            extended[stat_id] = updated
            component_values[component_index] += (updated - old) * grad_q
        params.deltas[:] = extended[:-1]

    # ------------------------------------------------------------------
    def max_constraint_error(self, params: ModelParameters) -> float:
        """``max_j |s_j − E[⟨c_j,I⟩]| / n`` across all statistics."""
        poly = self.polynomial
        total = self.statistic_set.total
        parts = poly.evaluation_parts(params)
        if parts.value <= 0:
            raise SolverError("polynomial evaluates to 0")
        worst = 0.0
        for pos in range(poly.schema.num_attributes):
            expected = poly.expected_one_dim(parts, params, total, pos)
            targets = np.asarray(self.statistic_set.one_dim[pos])
            worst = max(worst, float(np.abs(expected - targets).max()))
        for stat_id, statistic in enumerate(self.statistic_set.multi_dim):
            expected = poly.expected_multi_dim(parts, params, total, stat_id)
            worst = max(worst, abs(expected - statistic.value))
        return worst / total

    def constraint_errors(self, params: ModelParameters) -> dict:
        """Detailed per-family errors (used by diagnostics and tests)."""
        poly = self.polynomial
        total = self.statistic_set.total
        parts = poly.evaluation_parts(params)
        one_dim = []
        for pos in range(poly.schema.num_attributes):
            expected = poly.expected_one_dim(parts, params, total, pos)
            targets = np.asarray(self.statistic_set.one_dim[pos])
            one_dim.append(np.abs(expected - targets))
        multi = np.asarray(
            [
                abs(
                    poly.expected_multi_dim(parts, params, total, stat_id)
                    - statistic.value
                )
                for stat_id, statistic in enumerate(self.statistic_set.multi_dim)
            ]
        )
        return {"one_dim": one_dim, "multi_dim": multi}


def solve_statistics(
    polynomial: CompressedPolynomial,
    max_iterations: int = 30,
    threshold: float = 1e-6,
    callback: Callable[[int, float], None] | None = None,
) -> tuple[ModelParameters, SolverReport]:
    """Convenience wrapper: fit a polynomial's statistic set."""
    solver = MirrorDescentSolver(
        polynomial, max_iterations=max_iterations, threshold=threshold
    )
    return solver.solve(callback=callback)
