"""The dual objective Ψ (Sec 2 / Eq. 11) and a generic convex solver.

The MaxEnt parameters maximize the concave dual

    Ψ  =  Σ_j s_j ln(α_j)  −  n ln(P)

whose stationarity conditions are exactly the moment constraints
``E[⟨c_j,I⟩] = s_j``.  This module provides:

* :func:`dual_value` / :func:`dual_gradient` in ``θ = ln α`` space, and
* :func:`solve_dual_scipy` — an L-BFGS ascent via scipy, used as an
  *independent validation solver*: on small models it must agree with
  the Mirror Descent solver, which is one of the test suite's checks.

Statistics with ``s_j = 0`` are eliminated up front (their variables
are exactly 0 at the optimum, pushing ``θ_j → −∞``).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.core.polynomial import CompressedPolynomial
from repro.core.variables import ModelParameters
from repro.errors import SolverError


class _Packing:
    """Maps the free (s > 0) variables into one flat θ vector."""

    def __init__(self, polynomial: CompressedPolynomial):
        statistic_set = polynomial.statistic_set
        self.polynomial = polynomial
        self.one_dim_slots: list[tuple[int, int]] = []
        self.one_dim_targets: list[float] = []
        for pos, counts in enumerate(statistic_set.one_dim):
            for index, count in enumerate(counts):
                if count > 0:
                    self.one_dim_slots.append((pos, index))
                    self.one_dim_targets.append(count)
        self.delta_slots: list[int] = []
        self.delta_targets: list[float] = []
        for stat_id, statistic in enumerate(statistic_set.multi_dim):
            if statistic.value > 0:
                self.delta_slots.append(stat_id)
                self.delta_targets.append(statistic.value)
        self.targets = np.asarray(
            self.one_dim_targets + self.delta_targets, dtype=float
        )

    @property
    def size(self) -> int:
        return len(self.one_dim_slots) + len(self.delta_slots)

    def unpack(self, theta: np.ndarray) -> ModelParameters:
        params = ModelParameters(
            [np.zeros(size) for size in self.polynomial.sizes],
            np.zeros(self.polynomial.num_deltas),
        )
        values = np.exp(theta)
        for slot, (pos, index) in enumerate(self.one_dim_slots):
            params.alphas[pos][index] = values[slot]
        offset = len(self.one_dim_slots)
        for slot, stat_id in enumerate(self.delta_slots):
            params.deltas[stat_id] = values[offset + slot]
        return params

    def expectations(self, params: ModelParameters) -> np.ndarray:
        poly = self.polynomial
        total = poly.statistic_set.total
        parts = poly.evaluation_parts(params)
        if parts.value <= 0:
            raise SolverError("polynomial evaluates to 0 in dual ascent")
        out = np.empty(self.size, dtype=float)
        cache: dict[int, np.ndarray] = {}
        for slot, (pos, index) in enumerate(self.one_dim_slots):
            if pos not in cache:
                cache[pos] = poly.expected_one_dim(parts, params, total, pos)
            out[slot] = cache[pos][index]
        offset = len(self.one_dim_slots)
        for slot, stat_id in enumerate(self.delta_slots):
            out[offset + slot] = poly.expected_multi_dim(
                parts, params, total, stat_id
            )
        return out


def dual_value(polynomial: CompressedPolynomial, params: ModelParameters) -> float:
    """``Ψ = Σ_j s_j ln α_j − n ln P`` (``0·ln 0 ≡ 0``)."""
    statistic_set = polynomial.statistic_set
    total = statistic_set.total
    value = polynomial.evaluate(params)
    if value <= 0:
        raise SolverError("polynomial evaluates to 0")
    psi = -total * float(np.log(value))
    for pos, counts in enumerate(statistic_set.one_dim):
        for index, count in enumerate(counts):
            if count > 0:
                alpha = params.alphas[pos][index]
                if alpha <= 0:
                    return float("-inf")
                psi += count * float(np.log(alpha))
    for stat_id, statistic in enumerate(statistic_set.multi_dim):
        if statistic.value > 0:
            delta = params.deltas[stat_id]
            if delta <= 0:
                return float("-inf")
            psi += statistic.value * float(np.log(delta))
    return psi


def dual_gradient(
    polynomial: CompressedPolynomial, params: ModelParameters
) -> dict:
    """``∂Ψ/∂θ_j = s_j − E[⟨c_j,I⟩]`` for every statistic, grouped as
    ``{"one_dim": [per-attribute arrays], "multi_dim": array}``."""
    statistic_set = polynomial.statistic_set
    total = statistic_set.total
    parts = polynomial.evaluation_parts(params)
    one_dim = []
    for pos, counts in enumerate(statistic_set.one_dim):
        expected = polynomial.expected_one_dim(parts, params, total, pos)
        one_dim.append(np.asarray(counts) - expected)
    multi = np.asarray(
        [
            statistic.value
            - polynomial.expected_multi_dim(parts, params, total, stat_id)
            for stat_id, statistic in enumerate(statistic_set.multi_dim)
        ]
    )
    return {"one_dim": one_dim, "multi_dim": multi}


def solve_dual_scipy(
    polynomial: CompressedPolynomial,
    max_iterations: int = 500,
    tolerance: float = 1e-10,
) -> tuple[ModelParameters, optimize.OptimizeResult]:
    """Maximize Ψ with scipy's L-BFGS in ``θ = ln α`` space.

    Intended for small models (validation, examples); the Mirror
    Descent solver is the scalable path.
    """
    packing = _Packing(polynomial)
    if packing.size == 0:
        return packing.unpack(np.empty(0)), optimize.OptimizeResult(
            success=True, message="no positive statistics"
        )

    def objective(theta):
        params = packing.unpack(theta)
        value = polynomial.evaluate(params)
        if value <= 0:
            return float("inf"), np.zeros_like(theta)
        total = polynomial.statistic_set.total
        psi = float(np.dot(packing.targets, theta)) - total * float(np.log(value))
        gradient = packing.targets - packing.expectations(params)
        return -psi, -gradient

    theta0 = np.zeros(packing.size)
    result = optimize.minimize(
        objective,
        theta0,
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iterations, "ftol": tolerance, "gtol": 1e-10},
    )
    return packing.unpack(result.x), result
