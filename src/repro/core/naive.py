"""Uncompressed MaxEnt polynomial — one monomial per possible tuple.

This is Eq. (5) taken literally: ``P = Σ_{t∈Tup} Π_j α_j^{⟨c_j,t⟩}``.
It is exponential in the schema size and exists purely as a *ground
truth oracle*: the test suite checks that the compressed polynomial,
its gradients, its masked evaluations, and the solver's expected values
all agree with this object on small schemas.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.variables import ModelParameters
from repro.data.frequency import all_tuples
from repro.errors import SolverError
from repro.stats.statistic import StatisticSet


class NaivePolynomial:
    """Materialized monomial table for small schemas.

    For each possible tuple we precompute its per-attribute value
    indices and the set of multi-dimensional statistics it satisfies.
    """

    def __init__(self, statistic_set: StatisticSet):
        self.statistic_set = statistic_set
        self.schema = statistic_set.schema
        self.sizes = self.schema.sizes()
        tuples = list(all_tuples(self.schema))
        self.tuple_indices = np.asarray(tuples, dtype=np.int64)
        num_tuples = self.tuple_indices.shape[0]
        self.num_deltas = statistic_set.num_multi_dim
        membership = np.zeros((num_tuples, self.num_deltas), dtype=bool)
        for j, statistic in enumerate(statistic_set.multi_dim):
            satisfied = np.ones(num_tuples, dtype=bool)
            for pos in statistic.positions:
                rng = statistic.range_at(pos)
                column = self.tuple_indices[:, pos]
                satisfied &= (column >= rng.low) & (column <= rng.high)
            membership[:, j] = satisfied
        self.membership = membership

    @property
    def num_monomials(self) -> int:
        return self.tuple_indices.shape[0]

    # ------------------------------------------------------------------
    def monomials(
        self,
        params: ModelParameters,
        masks: Mapping[int, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Value of every monomial: ``Π_i α_{i,t_i} Π_{j: t ⊨ π_j} δ_j``."""
        values = np.ones(self.num_monomials, dtype=float)
        for pos in range(self.schema.num_attributes):
            alpha = params.alphas[pos]
            if masks and pos in masks:
                alpha = np.where(np.asarray(masks[pos], dtype=bool), alpha, 0.0)
            values = values * alpha[self.tuple_indices[:, pos]]
        for j in range(self.num_deltas):
            member = self.membership[:, j]
            values[member] *= params.deltas[j]
        return values

    def evaluate(
        self,
        params: ModelParameters,
        masks: Mapping[int, np.ndarray] | None = None,
    ) -> float:
        return float(self.monomials(params, masks).sum())

    def attribute_gradient(self, params: ModelParameters, pos: int) -> np.ndarray:
        """``∂P/∂α_{pos,v}`` for all values ``v``, by direct summation."""
        monomials = self.monomials(params)
        alpha = params.alphas[pos]
        column = self.tuple_indices[:, pos]
        gradient = np.zeros(self.sizes[pos], dtype=float)
        for value in range(self.sizes[pos]):
            rows = column == value
            if alpha[value] != 0:
                gradient[value] = monomials[rows].sum() / alpha[value]
            else:
                # Recompute the monomials with this α set to 1.
                saved = alpha[value]
                alpha[value] = 1.0
                gradient[value] = self.monomials(params)[rows].sum()
                alpha[value] = saved
        return gradient

    def delta_gradient(self, params: ModelParameters, stat_id: int) -> float:
        """``∂P/∂δ_{stat_id}`` by direct summation."""
        member = self.membership[:, stat_id]
        delta = float(params.deltas[stat_id])
        if delta != 0:
            return float(self.monomials(params)[member].sum() / delta)
        saved = params.deltas[stat_id]
        params.deltas[stat_id] = 1.0
        value = float(self.monomials(params)[member].sum())
        params.deltas[stat_id] = saved
        return value

    # ------------------------------------------------------------------
    def expected_count(
        self,
        params: ModelParameters,
        total: int,
        masks: Mapping[int, np.ndarray] | None = None,
    ) -> float:
        """``E[⟨q, I⟩] = n · P[masked]/P`` for a conjunctive query,
        straight from the definition (Sec 3.2's extended-polynomial
        route collapses to this because ``∂P_q/∂β`` at ``β=1`` is the
        masked monomial sum)."""
        full = self.evaluate(params)
        if full <= 0:
            raise SolverError("naive polynomial evaluates to 0")
        return total * self.evaluate(params, masks) / full

    def tuple_probabilities(self, params: ModelParameters) -> np.ndarray:
        """Per-tuple probability ``p_t = monomial_t / P`` — the
        distribution a single row follows under the model."""
        monomials = self.monomials(params)
        total = monomials.sum()
        if total <= 0:
            raise SolverError("naive polynomial evaluates to 0")
        return monomials / total
