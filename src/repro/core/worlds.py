"""Sampling possible worlds from a fitted MaxEnt model (Sec 2.1).

Under the slotted possible-world semantics with fixed cardinality
``n``, the MaxEnt distribution factorizes per row: each of the ``n``
slots holds tuple ``t`` independently with probability
``p_t = monomial_t / P`` (that is exactly what ``Pr(I) ∝ Π_j
α_j^{⟨c_j,I⟩}`` says).  Sampling a world therefore reduces to ``n``
i.i.d. categorical draws.

Two uses:

* **synthetic data generation** — materialize a plausible instance
  from a summary without access to the original data;
* **Monte-Carlo validation** — the empirical distribution of query
  answers over sampled worlds must match the closed-form expectation
  and binomial variance of :mod:`repro.core.inference`, which the test
  suite checks.

Direct sampling materializes the tuple-probability vector and is
limited to small schemas; :func:`sample_world_gibbs` covers larger
models by sampling attributes left-to-right from conditional
distributions evaluated on the compressed polynomial.
"""

from __future__ import annotations

import numpy as np

from repro.core.naive import NaivePolynomial
from repro.core.polynomial import CompressedPolynomial
from repro.core.variables import ModelParameters
from repro.data.relation import Relation
from repro.errors import SolverError
from repro.stats.statistic import StatisticSet


def sample_world(
    statistic_set: StatisticSet,
    params: ModelParameters,
    rng: np.random.Generator | int | None = None,
    num_rows: int | None = None,
) -> Relation:
    """Draw one possible world by direct categorical sampling.

    Materializes all ``|Tup|`` probabilities — small schemas only.
    """
    rng = _as_generator(rng)
    naive = NaivePolynomial(statistic_set)
    probabilities = naive.tuple_probabilities(params)
    total = num_rows if num_rows is not None else statistic_set.total
    draws = rng.choice(probabilities.shape[0], size=total, p=probabilities)
    return Relation.from_index_rows(
        statistic_set.schema, naive.tuple_indices[draws]
    )


def sample_world_sequential(
    polynomial: CompressedPolynomial,
    params: ModelParameters,
    rng: np.random.Generator | int | None = None,
    num_rows: int | None = None,
) -> Relation:
    """Draw one possible world without materializing ``Tup``.

    Attributes are sampled one at a time per row batch: the conditional
    distribution of attribute ``i`` given the already-fixed attributes
    is proportional to ``α_{i,v} · ∂P[masked]/∂α_{i,v}`` — one gradient
    pass of the compressed polynomial per (row-group, attribute), so the
    cost scales with the polynomial size, not the tuple space.

    Rows that share a prefix of sampled values share the conditional,
    so sampling proceeds by recursive partitioning of the row set.
    """
    rng = _as_generator(rng)
    statistic_set = polynomial.statistic_set
    total = num_rows if num_rows is not None else statistic_set.total
    num_attrs = polynomial.schema.num_attributes
    columns = np.zeros((total, num_attrs), dtype=np.int64)

    def fill(rows: np.ndarray, pos: int, masks: dict) -> None:
        if rows.size == 0 or pos == num_attrs:
            return
        parts = polynomial.evaluation_parts(params, masks)
        if parts.value <= 0:
            raise SolverError(
                "conditional distribution is degenerate (P[masked] = 0)"
            )
        gradient = polynomial.attribute_gradient(parts, pos)
        alpha = params.alphas[pos]
        mask = masks.get(pos)
        weights = alpha * gradient
        if mask is not None:
            weights = np.where(mask, weights, 0.0)
        weights = np.clip(weights, 0.0, None)
        weight_sum = weights.sum()
        if weight_sum <= 0:
            raise SolverError(
                f"attribute {pos} has no admissible value while sampling"
            )
        probabilities = weights / weight_sum
        draws = rng.choice(probabilities.shape[0], size=rows.size, p=probabilities)
        columns[rows, pos] = draws
        for value in np.unique(draws):
            subset = rows[draws == value]
            value_mask = np.zeros(polynomial.sizes[pos], dtype=bool)
            value_mask[value] = True
            fill(subset, pos + 1, {**masks, pos: value_mask})

    fill(np.arange(total), 0, {})
    return Relation.from_index_rows(polynomial.schema, columns)


def empirical_query_distribution(
    statistic_set: StatisticSet,
    params: ModelParameters,
    masks: dict,
    num_worlds: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Answers of one counting query over ``num_worlds`` sampled worlds
    — the Monte-Carlo counterpart of the closed-form estimate."""
    rng = _as_generator(rng)
    naive = NaivePolynomial(statistic_set)
    probabilities = naive.tuple_probabilities(params)
    keep = np.ones(naive.num_monomials, dtype=bool)
    for pos, mask in masks.items():
        keep &= np.asarray(mask, dtype=bool)[naive.tuple_indices[:, pos]]
    hit_probability = probabilities[keep].sum()
    return rng.binomial(statistic_set.total, hit_probability, size=num_worlds).astype(
        float
    )


def _as_generator(rng) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
