"""The canonical public API: session-oriented exploration.

One coherent surface over the whole reproduction:

* :class:`Explorer` — a session facade (``attach``/``open``) with a
  fluent query builder, SQL execution, per-session caches, and batched
  ``run_many()`` execution;
* :class:`SummaryBuilder` — keyword-free summary construction,
  replacing the deprecated ``EntropySummary.build`` kwargs pile;
  ``.shards(n, by=...)`` fits a partitioned
  :class:`~repro.core.sharding.ShardedSummary` in parallel workers;
* :class:`Backend` — the formal ABC every estimation method (exact,
  samples, single or sharded MaxEnt summaries) implements, with
  capability flags;
* :class:`SummaryStore` — named, versioned persistence for fitted
  summaries, including whole shard sets as one version.

Quick tour::

    from repro.api import Explorer, SummaryBuilder, SummaryStore

    summary = SummaryBuilder(relation).pairs(("a", "b")).budget(0).fit()
    store = SummaryStore("models")
    store.save(summary, "demo", tag="first")

    ex = Explorer.attach(summary)
    ex.query().where(a__ge=3).group_by("b").order("desc").limit(5).run()
"""

from repro.api.backend import Backend
from repro.api.builder import SummaryBuilder
from repro.api.explorer import Explorer
from repro.api.query import Query
from repro.api.store import SummaryRecord, SummaryStore

__all__ = [
    "Backend",
    "Explorer",
    "Query",
    "SummaryBuilder",
    "SummaryRecord",
    "SummaryStore",
]
