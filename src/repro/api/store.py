"""A directory-backed registry of named, versioned summaries.

The paper stores fitted models in Postgres plus a factorization text
file; our substrate persists each summary as a JSON + NPZ pair.  The
:class:`SummaryStore` wraps those pairs with a manifest so summaries
become *named artifacts* (in the spirit of OrpheusDB's bolt-on
versioned storage): every ``save`` creates a new immutable version of a
name, optionally tagged, and ``load``/``list`` address summaries by
name instead of file prefix.

Sharded summaries persist as one named version too: the version's
prefix holds the shard manifest plus one file pair per shard, and
``load`` transparently returns a
:class:`~repro.core.sharding.ShardedSummary`.

Layout::

    <root>/manifest.json
    <root>/<dir>/v<k>.json               (statistics, schema — or the
                                          shard manifest when sharded)
    <root>/<dir>/v<k>.npz                (fitted parameters)
    <root>/<dir>/v<k>-shard<i>.json/.npz (sharded versions only)
"""

from __future__ import annotations

import contextlib
import json
import re
import time
from dataclasses import dataclass
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.core.sharding import ShardedSummary, shard_prefix
from repro.core.summary import EntropySummary
from repro.errors import ReproError

_FORMAT_VERSION = 1
_MANIFEST = "manifest.json"
_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


@dataclass(frozen=True)
class SummaryRecord:
    """One stored version of one named summary."""

    name: str
    version: int
    tag: str | None
    created_at: float
    total: int
    num_statistics: int
    prefix: str  # store-relative path prefix of the .json/.npz pair
    #: shard count of a sharded version; 0 for a plain summary.
    shards: int = 0
    shard_by: str | None = None
    #: Ingest provenance of a delta-refreshed version
    #: (``parent_version``, ``rows_appended``, ``shards_refit``, ...);
    #: ``None`` for versions built from scratch.
    lineage: dict | None = None

    @property
    def parent_version(self) -> int | None:
        """Version this one was delta-refreshed from, if any."""
        if self.lineage is None:
            return None
        return self.lineage.get("parent_version")

    def describe(self) -> str:
        tag = f" tag={self.tag}" if self.tag else ""
        sharding = ""
        if self.shards:
            by = f" by {self.shard_by}" if self.shard_by else ""
            sharding = f", {self.shards} shards{by}"
        ancestry = ""
        if self.lineage is not None:
            parent = self.parent_version
            appended = self.lineage.get("rows_appended")
            ancestry = (
                f" (from v{parent}, +{appended} rows)"
                if parent is not None
                else f" (+{appended} rows)"
            )
        return (
            f"{self.name}@v{self.version}{tag}: n={self.total}, "
            f"stats={self.num_statistics}{sharding}{ancestry}"
        )


class SummaryStore:
    """Named, versioned persistence for :class:`EntropySummary`."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- manifest I/O ----------------------------------------------------
    @property
    def _manifest_path(self) -> Path:
        return self.root / _MANIFEST

    @contextlib.contextmanager
    def _manifest_lock(self):
        """Serialize manifest read-modify-write across processes.

        Experiment stores share one cache directory between concurrent
        bench processes; without the lock, two simultaneous ``save``
        calls would each read the manifest and the last writer would
        drop the other's version entry, orphaning its files.
        """
        if fcntl is None:
            yield
            return
        lock_path = self.root / (_MANIFEST + ".lock")
        with open(lock_path, "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _read_manifest(self) -> dict:
        if not self._manifest_path.exists():
            return {"format_version": _FORMAT_VERSION, "summaries": {}}
        document = json.loads(self._manifest_path.read_text())
        found = document.get("format_version")
        if found != _FORMAT_VERSION:
            raise ReproError(
                f"summary store at {self.root} has manifest format "
                f"{found!r}; this build reads format {_FORMAT_VERSION}"
            )
        return document

    def _write_manifest(self, document: dict) -> None:
        tmp = self._manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True))
        tmp.replace(self._manifest_path)

    def _dir_for(self, name: str, summaries: dict) -> str:
        taken = {entry["dir"] for entry in summaries.values()}
        base = _SAFE.sub("_", name) or "summary"
        candidate = base
        suffix = 2
        while candidate in taken:
            candidate = f"{base}-{suffix}"
            suffix += 1
        return candidate

    @staticmethod
    def _record(name: str, entry: dict, version_entry: dict) -> SummaryRecord:
        return SummaryRecord(
            name=name,
            version=version_entry["version"],
            tag=version_entry.get("tag"),
            created_at=version_entry["created_at"],
            total=version_entry["total"],
            num_statistics=version_entry["num_statistics"],
            prefix=version_entry["prefix"],
            shards=version_entry.get("shards", 0),
            shard_by=version_entry.get("shard_by"),
            lineage=version_entry.get("lineage"),
        )

    # -- public API ------------------------------------------------------
    def save(
        self,
        summary: "EntropySummary | ShardedSummary",
        name: str | None = None,
        tag: str | None = None,
        lineage: dict | None = None,
    ) -> SummaryRecord:
        """Persist a summary as the next version of ``name``.

        ``name`` defaults to ``summary.name``.  Versions are immutable
        and monotonically numbered per name; ``tag`` is free-form (e.g.
        ``"baseline"``, ``"budget-3000"``) and may repeat across
        versions.  A :class:`~repro.core.sharding.ShardedSummary`
        persists its whole shard set as the one version.  ``lineage``
        (JSON-safe) records ingest provenance — the delta-refresh
        pipeline writes ``parent_version``/``rows_appended``/
        ``shards_refit`` so a version's ancestry survives in the
        manifest.
        """
        name = name if name is not None else summary.name
        if not name:
            raise ReproError("summary name must be non-empty")
        with self._manifest_lock():
            document = self._read_manifest()
            summaries = document["summaries"]
            entry = summaries.get(name)
            if entry is None:
                entry = {"dir": self._dir_for(name, summaries), "versions": []}
                summaries[name] = entry
            version = 1 + max(
                (item["version"] for item in entry["versions"]), default=0
            )
            prefix = f"{entry['dir']}/v{version}"
            summary.save(self.root / prefix)
            version_entry = {
                "version": version,
                "tag": tag,
                "created_at": time.time(),
                "total": summary.total,
                "num_statistics": summary.num_statistics,
                "prefix": prefix,
            }
            if isinstance(summary, ShardedSummary):
                version_entry["kind"] = "sharded"
                version_entry["shards"] = summary.num_shards
                version_entry["shard_by"] = summary.shard_by
            if lineage is not None:
                version_entry["lineage"] = lineage
            entry["versions"].append(version_entry)
            self._write_manifest(document)
        return self._record(name, entry, version_entry)

    def _resolve(
        self, name: str, version: int | None, tag: str | None
    ) -> tuple[dict, dict]:
        document = self._read_manifest()
        entry = document["summaries"].get(name)
        if entry is None or not entry["versions"]:
            known = ", ".join(sorted(document["summaries"])) or "<empty store>"
            raise ReproError(
                f"no summary named {name!r} in store {self.root} "
                f"(known: {known})"
            )
        if version is not None and tag is not None:
            raise ReproError("give version or tag, not both")
        candidates = entry["versions"]
        if tag is not None:
            candidates = [item for item in candidates if item.get("tag") == tag]
            if not candidates:
                raise ReproError(f"summary {name!r} has no version tagged {tag!r}")
        if version is not None:
            for item in candidates:
                if item["version"] == version:
                    return entry, item
            raise ReproError(f"summary {name!r} has no version {version}")
        return entry, max(candidates, key=lambda item: item["version"])

    def load(
        self,
        name: str,
        version: int | None = None,
        tag: str | None = None,
    ) -> "EntropySummary | ShardedSummary":
        """Load a stored summary (latest version unless pinned).

        Sharded versions come back as
        :class:`~repro.core.sharding.ShardedSummary`.
        """
        _, summary = self.load_with_record(name, version=version, tag=tag)
        return summary

    def load_with_record(
        self,
        name: str,
        version: int | None = None,
        tag: str | None = None,
    ) -> "tuple[SummaryRecord, EntropySummary | ShardedSummary]":
        """Load a summary *and* its metadata record in one manifest read.

        The serving layer's hot-reload path: the record pins the
        version number the server keys its shared result cache on, and
        resolving both together means a concurrent ``save`` cannot slip
        a different version between the metadata and the model load.
        """
        entry, version_entry = self._resolve(name, version, tag)
        record = self._record(name, entry, version_entry)
        prefix = self.root / version_entry["prefix"]
        if version_entry.get("kind") == "sharded":
            return record, ShardedSummary.load(prefix)
        return record, EntropySummary.load(prefix)

    def record(
        self,
        name: str,
        version: int | None = None,
        tag: str | None = None,
    ) -> SummaryRecord:
        """Metadata of one stored version without loading the model."""
        entry, version_entry = self._resolve(name, version, tag)
        return self._record(name, entry, version_entry)

    def list(self) -> list[SummaryRecord]:
        """Every stored version of every name, newest last per name."""
        document = self._read_manifest()
        records = []
        for name in sorted(document["summaries"]):
            entry = document["summaries"][name]
            for version_entry in sorted(
                entry["versions"], key=lambda item: item["version"]
            ):
                records.append(self._record(name, entry, version_entry))
        return records

    def versions(self, name: str) -> list[SummaryRecord]:
        """All versions of one name, oldest first."""
        return [record for record in self.list() if record.name == name]

    def latest_version(self, name: str) -> int:
        """Highest stored version number of ``name``."""
        return self.record(name).version

    def has(self, name: str) -> bool:
        return name in self._read_manifest()["summaries"]

    __contains__ = has

    def delete(self, name: str, version: int | None = None) -> None:
        """Remove one version, or every version of a name."""
        with self._manifest_lock():
            document = self._read_manifest()
            entry = document["summaries"].get(name)
            if entry is None:
                raise ReproError(
                    f"no summary named {name!r} in store {self.root}"
                )
            doomed = [
                item
                for item in entry["versions"]
                if version is None or item["version"] == version
            ]
            if not doomed:
                raise ReproError(f"summary {name!r} has no version {version}")
            for item in doomed:
                prefix = self.root / item["prefix"]
                prefix.with_suffix(".json").unlink(missing_ok=True)
                prefix.with_suffix(".npz").unlink(missing_ok=True)
                for index in range(item.get("shards", 0)):
                    shard = shard_prefix(prefix, index)
                    shard.with_suffix(".json").unlink(missing_ok=True)
                    shard.with_suffix(".npz").unlink(missing_ok=True)
            entry["versions"] = [
                item for item in entry["versions"] if item not in doomed
            ]
            if not entry["versions"]:
                del document["summaries"][name]
            self._write_manifest(document)

    def __len__(self):
        return len(self._read_manifest()["summaries"])

    def __repr__(self):
        return f"SummaryStore({str(self.root)!r}, names={len(self)})"
