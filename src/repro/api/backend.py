"""The formal query-backend contract.

Every estimation method the engine can execute against — the exact
relation, weighted samples, and MaxEnt summaries — implements this ABC.
It replaces the old ``CountBackend`` Protocol duck-typing with an
explicit base class carrying *capability flags*, so callers (the SQL
engine, the evaluation harness, the CLI) can ask a backend what it can
do instead of probing for attributes:

* ``supports_sum`` — the backend can answer ``SUM``/``AVG`` aggregates
  via :meth:`sum_values`;
* ``is_exact`` — answers are ground truth, not estimates (used by the
  harness to pick the reference method).

The module deliberately sits at the bottom of the import graph (only
``repro.errors`` above it) so concrete backends in ``repro.query`` and
``repro.baselines`` can subclass it without cycles.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.schema import Schema
    from repro.stats.predicates import Conjunction


class Backend(abc.ABC):
    """A method that answers conjunctive counting queries.

    Subclasses must set :attr:`schema` and :attr:`name` in
    ``__init__`` and may flip the capability flags as class attributes.
    """

    #: Can this backend answer ``SUM``/``AVG`` via :meth:`sum_values`?
    supports_sum: bool = False
    #: Are answers ground truth (full scan) rather than estimates?
    is_exact: bool = False

    schema: "Schema"
    name: str = "backend"

    # -- required interface ---------------------------------------------
    @abc.abstractmethod
    def count(self, predicate: "Conjunction") -> float:
        """Estimated/exact ``COUNT(*)`` under a conjunction."""

    @abc.abstractmethod
    def group_counts(
        self, attrs: Sequence[str], predicate: "Conjunction | None"
    ) -> dict[tuple, float]:
        """Counts per combination of group-attribute *labels*."""

    # -- optional capabilities ------------------------------------------
    def count_many(self, predicates: Sequence["Conjunction"]) -> list[float]:
        """Batched :meth:`count`.

        The default loops; backends with a vectorized path (the MaxEnt
        summary's single-pass polynomial evaluation) override this.
        """
        return [self.count(predicate) for predicate in predicates]

    def sum_values(self, attr, weights, predicate: "Conjunction | None") -> float:
        """``SUM(w(attr))`` under a conjunction, when ``supports_sum``."""
        raise QueryError(
            f"backend {self.name!r} ({type(self).__name__}) does not "
            "support SUM/AVG aggregates"
        )

    # -- introspection ---------------------------------------------------
    def describe(self) -> dict:
        """Capability card shown by the CLI and the Explorer."""
        return {
            "name": self.name,
            "type": type(self).__name__,
            "supports_sum": self.supports_sum,
            "is_exact": self.is_exact,
        }

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"
