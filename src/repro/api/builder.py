"""Keyword-free summary construction: the :class:`SummaryBuilder`.

Replaces the kwargs-soup ``EntropySummary.build(relation, pairs=...,
per_pair_budget=..., budget=..., num_pairs=..., strategy=...,
heuristic=..., exclude_attrs=..., max_iterations=..., threshold=...,
name=..., seed=...)`` with a chainable builder::

    summary = (
        SummaryBuilder(relation)
        .pairs(("origin_state", "distance"), ("dest_state", "distance"))
        .per_pair_budget(150)
        .iterations(20)
        .name("Ent1&2")
        .fit()
    )

Automatic pair selection (Sec 4.3) uses ``budget``/``num_pairs``
instead of explicit ``pairs``; leaving both unset fits a 1D-only
summary (the paper's *No2D*).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.summary import EntropySummary
from repro.errors import BudgetError, ReproError
from repro.stats.selection import build_statistic_set

_STRATEGIES = ("cover", "correlation")
_HEURISTICS = ("composite", "large", "zero")


class SummaryBuilder:
    """Fluent, validated configuration for fitting one summary."""

    def __init__(self, relation):
        self._relation = relation
        self._pairs: list[tuple] | None = None
        self._per_pair_budget: int | None = None
        self._budget: int = 0
        self._num_pairs: int = 0
        self._strategy: str = "cover"
        self._heuristic: str = "composite"
        self._exclude: tuple = ()
        self._iterations: int = 30
        self._threshold: float = 1e-6
        self._name: str = "summary"
        self._seed: int = 0

    # -- statistic selection --------------------------------------------
    def pairs(self, *pairs) -> "SummaryBuilder":
        """Explicit 2D attribute pairs, each a ``(attrA, attrB)`` tuple.

        A single iterable of pairs is also accepted:
        ``.pairs([("a", "b"), ("c", "d")])``.
        """
        if (
            len(pairs) == 1
            and isinstance(pairs[0], (list, tuple))
            and pairs[0]
            and isinstance(pairs[0][0], (list, tuple))
        ):
            pairs = tuple(pairs[0])
        resolved = []
        for pair in pairs:
            pair = tuple(pair)
            if len(pair) != 2:
                raise ReproError(
                    f"each pair must name exactly two attributes, got {pair!r}"
                )
            resolved.append(pair)
        self._pairs = resolved or None
        return self

    def per_pair_budget(self, buckets: int) -> "SummaryBuilder":
        """Bucket budget per explicit pair (paper Fig. 4 style)."""
        if buckets < 1:
            raise BudgetError(f"per-pair budget must be >= 1, got {buckets}")
        self._per_pair_budget = int(buckets)
        return self

    def budget(self, total: int) -> "SummaryBuilder":
        """Total 2D bucket budget ``B`` for automatic pair selection."""
        if total < 0:
            raise BudgetError(f"budget must be >= 0, got {total}")
        self._budget = int(total)
        return self

    def num_pairs(self, count: int) -> "SummaryBuilder":
        """Number of pairs ``Ba`` the automatic selection may pick."""
        if count < 0:
            raise BudgetError(f"num_pairs must be >= 0, got {count}")
        self._num_pairs = int(count)
        return self

    def strategy(self, strategy: str) -> "SummaryBuilder":
        """Automatic pair-choice rule: ``cover`` or ``correlation``."""
        if strategy not in _STRATEGIES:
            raise ReproError(
                f"unknown strategy {strategy!r}; choose from {_STRATEGIES}"
            )
        self._strategy = strategy
        return self

    def heuristic(self, heuristic: str) -> "SummaryBuilder":
        """Per-pair bucketization heuristic (Sec 4.3)."""
        if heuristic not in _HEURISTICS:
            raise ReproError(
                f"unknown heuristic {heuristic!r}; choose from {_HEURISTICS}"
            )
        self._heuristic = heuristic
        return self

    def exclude(self, *attrs) -> "SummaryBuilder":
        """Attributes never used in 2D statistics (e.g. ``fl_date``)."""
        if len(attrs) == 1 and not isinstance(attrs[0], (str, int)):
            attrs = tuple(attrs[0])
        self._exclude = attrs
        return self

    # -- solver ----------------------------------------------------------
    def iterations(self, count: int) -> "SummaryBuilder":
        """Mirror Descent iteration cap."""
        if count < 1:
            raise ReproError(f"iterations must be >= 1, got {count}")
        self._iterations = int(count)
        return self

    def threshold(self, value: float) -> "SummaryBuilder":
        """Solver convergence threshold."""
        if value <= 0:
            raise ReproError(f"threshold must be > 0, got {value}")
        self._threshold = float(value)
        return self

    def seed(self, seed: int) -> "SummaryBuilder":
        """Seed for the randomized parts of statistic selection."""
        self._seed = int(seed)
        return self

    def name(self, name: str) -> "SummaryBuilder":
        """Display/storage name of the fitted summary."""
        self._name = str(name)
        return self

    # -- interop ---------------------------------------------------------
    def with_options(self, **options) -> "SummaryBuilder":
        """Apply options given as ``EntropySummary.build`` keyword names.

        Bridges callers that carry configuration around as dicts (the
        hierarchical summary, the deprecated ``build`` shim).
        """
        setters = {
            "pairs": lambda v: self.pairs(*(v or ())),
            "per_pair_budget": lambda v: v is None or self.per_pair_budget(v),
            "budget": self.budget,
            "num_pairs": self.num_pairs,
            "strategy": self.strategy,
            "heuristic": self.heuristic,
            "exclude_attrs": lambda v: self.exclude(*v),
            "max_iterations": self.iterations,
            "threshold": self.threshold,
            "name": self.name,
            "seed": self.seed,
        }
        for key, value in options.items():
            if key not in setters:
                raise ReproError(
                    f"unknown summary option {key!r}; expected one of "
                    f"{sorted(setters)}"
                )
            setters[key](value)
        return self

    # -- terminal --------------------------------------------------------
    def fit(self) -> EntropySummary:
        """Select statistics, compress the polynomial, and solve."""
        statistic_set = build_statistic_set(
            self._relation,
            budget=self._budget,
            num_pairs=self._num_pairs,
            pairs=self._pairs,
            per_pair_budget=self._per_pair_budget,
            strategy=self._strategy,
            heuristic=self._heuristic,
            exclude_attrs=self._exclude,
            seed=self._seed,
        )
        return EntropySummary.from_statistics(
            statistic_set,
            max_iterations=self._iterations,
            threshold=self._threshold,
            name=self._name,
        )

    def __repr__(self):
        parts = [f"name={self._name!r}"]
        if self._pairs:
            parts.append(f"pairs={self._pairs!r}")
        if self._budget:
            parts.append(f"budget={self._budget}")
        return f"SummaryBuilder({', '.join(parts)})"
