"""Keyword-free summary construction: the :class:`SummaryBuilder`.

Replaces the kwargs-soup ``EntropySummary.build(relation, pairs=...,
per_pair_budget=..., budget=..., num_pairs=..., strategy=...,
heuristic=..., exclude_attrs=..., max_iterations=..., threshold=...,
name=..., seed=...)`` with a chainable builder::

    summary = (
        SummaryBuilder(relation)
        .pairs(("origin_state", "distance"), ("dest_state", "distance"))
        .per_pair_budget(150)
        .iterations(20)
        .name("Ent1&2")
        .fit()
    )

Automatic pair selection (Sec 4.3) uses ``budget``/``num_pairs``
instead of explicit ``pairs``; leaving both unset fits a 1D-only
summary (the paper's *No2D*).

``.shards(n, by=...)`` turns the fit into a sharded build: the
relation is partitioned, the 2D bucket budget is divided across the
shards (total model size stays constant), and ``fit()`` returns a
:class:`~repro.core.sharding.ShardedSummary` whose shard models were
fitted in parallel worker processes.
"""

from __future__ import annotations

import math

from repro.core.sharding import ShardedSummary, partition_relation
from repro.core.summary import EntropySummary
from repro.errors import BudgetError, ReproError
from repro.stats.selection import build_statistic_set

_STRATEGIES = ("cover", "correlation")
_HEURISTICS = ("composite", "large", "zero")


class SummaryBuilder:
    """Fluent, validated configuration for fitting one summary."""

    def __init__(self, relation):
        self._relation = relation
        self._pairs: list[tuple] | None = None
        self._per_pair_budget: int | None = None
        self._budget: int = 0
        self._num_pairs: int = 0
        self._strategy: str = "cover"
        self._heuristic: str = "composite"
        self._exclude: tuple = ()
        self._iterations: int = 30
        self._threshold: float = 1e-6
        self._name: str = "summary"
        self._seed: int = 0
        self._num_shards: int = 1
        self._shard_by = None
        self._workers: int | None = None

    # -- statistic selection --------------------------------------------
    def pairs(self, *pairs) -> "SummaryBuilder":
        """Explicit 2D attribute pairs, each a ``(attrA, attrB)`` tuple.

        A single iterable of pairs is also accepted:
        ``.pairs([("a", "b"), ("c", "d")])``.
        """
        if (
            len(pairs) == 1
            and isinstance(pairs[0], (list, tuple))
            and pairs[0]
            and isinstance(pairs[0][0], (list, tuple))
        ):
            pairs = tuple(pairs[0])
        resolved = []
        for pair in pairs:
            pair = tuple(pair)
            if len(pair) != 2:
                raise ReproError(
                    f"each pair must name exactly two attributes, got {pair!r}"
                )
            resolved.append(pair)
        self._pairs = resolved or None
        return self

    def per_pair_budget(self, buckets: int) -> "SummaryBuilder":
        """Bucket budget per explicit pair (paper Fig. 4 style)."""
        if buckets < 1:
            raise BudgetError(f"per-pair budget must be >= 1, got {buckets}")
        self._per_pair_budget = int(buckets)
        return self

    def budget(self, total: int) -> "SummaryBuilder":
        """Total 2D bucket budget ``B`` for automatic pair selection."""
        if total < 0:
            raise BudgetError(f"budget must be >= 0, got {total}")
        self._budget = int(total)
        return self

    def num_pairs(self, count: int) -> "SummaryBuilder":
        """Number of pairs ``Ba`` the automatic selection may pick."""
        if count < 0:
            raise BudgetError(f"num_pairs must be >= 0, got {count}")
        self._num_pairs = int(count)
        return self

    def strategy(self, strategy: str) -> "SummaryBuilder":
        """Automatic pair-choice rule: ``cover`` or ``correlation``."""
        if strategy not in _STRATEGIES:
            raise ReproError(
                f"unknown strategy {strategy!r}; choose from {_STRATEGIES}"
            )
        self._strategy = strategy
        return self

    def heuristic(self, heuristic: str) -> "SummaryBuilder":
        """Per-pair bucketization heuristic (Sec 4.3)."""
        if heuristic not in _HEURISTICS:
            raise ReproError(
                f"unknown heuristic {heuristic!r}; choose from {_HEURISTICS}"
            )
        self._heuristic = heuristic
        return self

    def exclude(self, *attrs) -> "SummaryBuilder":
        """Attributes never used in 2D statistics (e.g. ``fl_date``)."""
        if len(attrs) == 1 and not isinstance(attrs[0], (str, int)):
            attrs = tuple(attrs[0])
        self._exclude = attrs
        return self

    # -- solver ----------------------------------------------------------
    def iterations(self, count: int) -> "SummaryBuilder":
        """Mirror Descent iteration cap."""
        if count < 1:
            raise ReproError(f"iterations must be >= 1, got {count}")
        self._iterations = int(count)
        return self

    def threshold(self, value: float) -> "SummaryBuilder":
        """Solver convergence threshold."""
        if value <= 0:
            raise ReproError(f"threshold must be > 0, got {value}")
        self._threshold = float(value)
        return self

    def seed(self, seed: int) -> "SummaryBuilder":
        """Seed for the randomized parts of statistic selection."""
        self._seed = int(seed)
        return self

    # -- sharding --------------------------------------------------------
    def shards(self, count: int, by=None, workers: int | None = None) -> "SummaryBuilder":
        """Fit ``count`` per-shard models instead of one global model.

        ``by=None`` partitions rows round-robin; ``by="attr"`` cuts the
        attribute's domain into contiguous ranges balanced by row count
        (queries constraining it then skip non-owning shards).  The 2D
        bucket budget is divided across shards so the sharded summary
        has the same total budget as the unsharded fit — per-shard
        polynomials are smaller, which makes both the build and query
        evaluation cheaper.  ``workers`` caps the build's worker
        processes (default: one per shard up to the core count);
        ``workers=1`` builds serially in-process.

        ``shards(1)`` restores the unsharded fit.
        """
        if count < 1:
            raise ReproError(f"shards must be >= 1, got {count}")
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self._num_shards = int(count)
        self._shard_by = by
        self._workers = workers
        return self

    def name(self, name: str) -> "SummaryBuilder":
        """Display/storage name of the fitted summary."""
        self._name = str(name)
        return self

    # -- interop ---------------------------------------------------------
    def with_options(self, **options) -> "SummaryBuilder":
        """Apply options given as a keyword dict (legacy
        ``EntropySummary.build`` names).

        Bridges callers that carry configuration around as dicts (the
        hierarchical summary, the deprecated ``build`` shim).
        """
        setters = {
            "pairs": lambda v: self.pairs(*(v or ())),
            "per_pair_budget": lambda v: v is None or self.per_pair_budget(v),
            "budget": self.budget,
            "num_pairs": self.num_pairs,
            "strategy": self.strategy,
            "heuristic": self.heuristic,
            "exclude_attrs": lambda v: self.exclude(*v),
            "max_iterations": self.iterations,
            "threshold": self.threshold,
            "name": self.name,
            "seed": self.seed,
        }
        for key, value in options.items():
            if key not in setters:
                raise ReproError(
                    f"unknown summary option {key!r}; expected one of "
                    f"{sorted(setters)}"
                )
            setters[key](value)
        return self

    # -- terminal --------------------------------------------------------
    def fit(self) -> "EntropySummary | ShardedSummary":
        """Select statistics, compress the polynomial, and solve.

        With ``shards(n > 1)`` this partitions the relation, divides
        the bucket budget, fits the shard models in worker processes,
        and returns a :class:`~repro.core.sharding.ShardedSummary`.
        """
        if self._num_shards > 1:
            return self._fit_sharded()
        statistic_set = build_statistic_set(
            self._relation,
            budget=self._budget,
            num_pairs=self._num_pairs,
            pairs=self._pairs,
            per_pair_budget=self._per_pair_budget,
            strategy=self._strategy,
            heuristic=self._heuristic,
            exclude_attrs=self._exclude,
            seed=self._seed,
        )
        return EntropySummary.from_statistics(
            statistic_set,
            max_iterations=self._iterations,
            threshold=self._threshold,
            name=self._name,
        )

    def append(
        self,
        summary: "EntropySummary | ShardedSummary",
        rows,
        *,
        store=None,
        tag: str | None = None,
    ):
        """Delta-refresh a summary fitted from this builder's relation.

        ``rows`` is an append batch (label rows, a
        :class:`~repro.data.relation.Relation`, or an
        :class:`~repro.ingest.AppendBatch`).  Only the shards whose
        value ranges the batch touches are refit — warm-started from
        their previous solutions — and the builder's relation advances
        to include the appended rows, so repeated ``append`` calls
        chain.  With ``store`` set, the refreshed summary is published
        as a child version with lineage metadata.

        Returns the :class:`~repro.ingest.IngestReport`; the refreshed
        summary is ``report.summary``.
        """
        from repro.ingest import IngestPipeline

        pipeline = IngestPipeline(
            summary,
            self._relation,
            store=store,
            name=self._name if store is not None else None,
            max_iterations=self._iterations,
            threshold=self._threshold,
        )
        report = pipeline.append(rows, tag=tag)
        self._relation = pipeline.relation
        return report

    def _fit_sharded(self) -> ShardedSummary:
        partition = partition_relation(
            self._relation, self._num_shards, by=self._shard_by
        )
        # Hold the *total* 2D bucket budget constant: each shard models
        # 1/n of the rows with 1/n of the buckets (floor of 2 so every
        # explicit pair keeps at least a 2x2 split).
        per_pair = self._per_pair_budget
        if per_pair is not None:
            per_pair = max(2, math.ceil(per_pair / self._num_shards))
        budget = self._budget
        if budget:
            budget = max(2, math.ceil(budget / self._num_shards))
        stat_options = {
            "budget": budget,
            "num_pairs": self._num_pairs,
            "pairs": self._pairs,
            "per_pair_budget": per_pair,
            "strategy": self._strategy,
            "heuristic": self._heuristic,
            "exclude_attrs": self._exclude,
            "seed": self._seed,
        }
        return ShardedSummary.fit_partitions(
            partition,
            stat_options,
            max_iterations=self._iterations,
            threshold=self._threshold,
            name=self._name,
            workers=self._workers,
        )

    def __repr__(self):
        parts = [f"name={self._name!r}"]
        if self._pairs:
            parts.append(f"pairs={self._pairs!r}")
        if self._budget:
            parts.append(f"budget={self._budget}")
        if self._num_shards > 1:
            parts.append(f"shards={self._num_shards}")
        return f"SummaryBuilder({', '.join(parts)})"
