"""The :class:`Explorer` — one interactive exploration session.

The paper pitches probabilistic summaries as the engine behind
"human-speed" data exploration (Sec 1): an analyst attaches to a
dataset once, then fires many small counting queries.  The Explorer is
that session object.  It owns

* a :class:`~repro.api.backend.Backend` (exact relation, sample, or
  MaxEnt summary — anything goes),
* a SQL engine for text queries and a fluent builder for programmatic
  ones,
* per-session LRU caches of *compiled predicates* and *query results*
  (group-bys included), so repeated interactive queries skip label
  resolution and re-inference entirely,
* ``run_many()`` — batched execution that funnels all scalar counting
  queries of a batch through a single vectorized
  :class:`~repro.core.inference.InferenceEngine` pass.

Construction::

    ex = Explorer.attach(relation)                  # exact backend
    ex = Explorer.attach(summary, rounded=True)     # summary backend
    ex = Explorer.open(store, "flights", tag="v2")  # from a SummaryStore
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.api.query import Query
from repro.errors import QueryError, ReproError
from repro.query.ast import CountQuery
from repro.query.engine import QueryResult, SQLEngine
from repro.stats.predicates import Conjunction


class _LRUCache:
    """Tiny LRU map; ``maxsize=0`` disables caching entirely."""

    __slots__ = ("maxsize", "data", "hits", "misses")

    def __init__(self, maxsize: int):
        self.maxsize = max(int(maxsize), 0)
        self.data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self.data[key]
        except KeyError:
            self.misses += 1
            return None
        self.data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        if not self.maxsize:
            return
        self.data[key] = value
        self.data.move_to_end(key)
        while len(self.data) > self.maxsize:
            self.data.popitem(last=False)

    def clear(self) -> None:
        self.data.clear()
        self.hits = 0
        self.misses = 0


class Explorer:
    """Session facade over one backend: fluent queries, SQL, batching."""

    def __init__(self, backend, *, table_name: str = "R", cache_size: int = 256):
        if not hasattr(backend, "count"):
            raise ReproError(
                f"{type(backend).__name__} is not a query backend "
                "(no count method); use Explorer.attach() for relations "
                "and summaries"
            )
        self.backend = backend
        self.table_name = table_name
        self.engine = SQLEngine(backend, table_name=table_name)
        self._predicates = _LRUCache(cache_size)
        self._results = _LRUCache(cache_size)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        source,
        *,
        rounded: bool = False,
        table_name: str = "R",
        cache_size: int = 256,
    ) -> "Explorer":
        """Open a session on a relation, summary, backend, or Explorer.

        * ``Relation`` → exact full-scan backend,
        * ``EntropySummary`` → model backend (``rounded=True`` applies
          the paper's rounding of estimates below 0.5),
        * ``ShardedSummary`` → shard-merging model backend,
        * any :class:`~repro.api.backend.Backend` (or duck-typed object
          with ``count``) → used as is,
        * an ``Explorer`` → returned unchanged.
        """
        if isinstance(source, Explorer):
            return source
        # Imported lazily: these modules subclass Backend from this
        # package, so top-level imports would be circular.
        from repro.core.sharding import ShardedSummary
        from repro.core.summary import EntropySummary
        from repro.data.relation import Relation

        if isinstance(source, EntropySummary):
            from repro.query.backends import SummaryBackend

            backend = SummaryBackend(source, rounded=rounded)
        elif isinstance(source, ShardedSummary):
            from repro.query.backends import ShardedBackend

            backend = ShardedBackend(source, rounded=rounded)
        elif isinstance(source, Relation):
            from repro.baselines.exact import ExactBackend

            backend = ExactBackend(source)
        else:
            backend = source
        return cls(backend, table_name=table_name, cache_size=cache_size)

    @classmethod
    def open(
        cls,
        store,
        name: str,
        *,
        version: int | None = None,
        tag: str | None = None,
        rounded: bool = False,
        table_name: str = "R",
        cache_size: int = 256,
    ) -> "Explorer":
        """Open a session on a summary stored in a :class:`SummaryStore`
        (or a filesystem path to one)."""
        from repro.api.store import SummaryStore

        if not isinstance(store, SummaryStore):
            store = SummaryStore(store)
        summary = store.load(name, version=version, tag=tag)
        return cls.attach(
            summary, rounded=rounded, table_name=table_name, cache_size=cache_size
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self):
        return self.backend.schema

    @property
    def summary(self):
        """The underlying ``EntropySummary``/``ShardedSummary`` (None
        for non-model backends)."""
        return getattr(self.backend, "summary", None)

    def rounded(self, flag: bool = True) -> "Explorer":
        """A sibling session over the same summary with paper-style
        rounding toggled (summaries only)."""
        if self.summary is None:
            raise ReproError("rounded() requires a summary backend")
        return Explorer.attach(
            self.summary,
            rounded=flag,
            table_name=self.table_name,
            cache_size=self._results.maxsize,
        )

    def describe(self) -> dict:
        """Backend capability card plus session cache statistics."""
        describe = getattr(self.backend, "describe", None)
        card = describe() if describe is not None else {
            "name": getattr(self.backend, "name", type(self.backend).__name__),
            "type": type(self.backend).__name__,
        }
        card["table"] = self.table_name
        card["cache"] = self.cache_info()
        return card

    def cache_info(self) -> dict:
        return {
            "predicates": {
                "size": len(self._predicates.data),
                "hits": self._predicates.hits,
                "misses": self._predicates.misses,
            },
            "results": {
                "size": len(self._results.data),
                "hits": self._results.hits,
                "misses": self._results.misses,
            },
        }

    def clear_cache(self) -> None:
        """Drop both session caches (and the model caches, if any)."""
        self._predicates.clear()
        self._results.clear()
        summary = self.summary
        if summary is not None:
            summary.clear_cache()

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self) -> Query:
        """Start a fluent query against this session."""
        return Query(self)

    def sql(self, text: str) -> QueryResult:
        """Execute SQL text (cached)."""
        return self.execute(text)

    @staticmethod
    def _predicate_key(query: CountQuery):
        return tuple(
            sorted(
                (condition.attribute, condition.op, repr(condition.values))
                for condition in query.conditions
            )
        )

    def _compile(self, query: CountQuery) -> Conjunction | None:
        if not query.conditions:
            return None
        key = self._predicate_key(query)
        predicate = self._predicates.get(key)
        if predicate is None:
            predicate = self.engine.compile(query)
            self._predicates.put(key, predicate)
        return predicate

    def _normalize(self, query) -> CountQuery:
        if isinstance(query, Query):
            query = query.to_ast()
        return self.engine.parse(query)

    def execute(self, query: "CountQuery | Query | str") -> QueryResult:
        """Execute one query with predicate + result caching."""
        query = self._normalize(query)
        key = repr(query)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        result = self.engine.execute_compiled(query, self._compile(query))
        self._results.put(key, result)
        return result

    def run_many(
        self, queries: Sequence["CountQuery | Query | str"]
    ) -> list[QueryResult]:
        """Execute a batch of queries, vectorizing where possible.

        All scalar ``COUNT(*)`` queries in the batch run through one
        :meth:`InferenceEngine.estimate_masks_batch` pass on model
        backends (one polynomial evaluation for the whole batch instead
        of one per query); grouped and SUM/AVG queries fall back to
        per-query execution.  Results come back in input order and
        populate the session cache like sequential ``run()`` calls.
        """
        parsed = [self._normalize(query) for query in queries]
        keys = [repr(query) for query in parsed]
        results: list[QueryResult | None] = [self._results.get(key) for key in keys]

        batchable: list[int] = []
        for index, (query, result) in enumerate(zip(parsed, results)):
            if result is not None:
                continue
            if query.aggregate == "count" and not query.is_grouped:
                batchable.append(index)
            else:
                result = self.engine.execute_compiled(query, self._compile(query))
                self._results.put(keys[index], result)
                results[index] = result

        if batchable:
            conjunctions = [
                self._compile(parsed[index]) or Conjunction(self.schema, {})
                for index in batchable
            ]
            estimator = getattr(self.backend, "estimate_many", None)
            value_of = getattr(self.backend, "value_of", None)
            if estimator is not None and value_of is not None:
                # One vectorized inference pass yields both the scalar
                # counts and the error bounds.
                estimates = estimator(conjunctions)
                counts = [value_of(estimate) for estimate in estimates]
            else:
                estimates = None
                counter = getattr(self.backend, "count_many", None)
                if counter is not None:
                    counts = counter(conjunctions)
                else:
                    counts = [self.backend.count(c) for c in conjunctions]
            for offset, index in enumerate(batchable):
                result = QueryResult(
                    parsed[index],
                    float(counts[offset]),
                    None,
                    estimates[offset] if estimates is not None else None,
                )
                self._results.put(keys[index], result)
                results[index] = result
        return results  # type: ignore[return-value]

    # -- predicate-level entry points (harness, experiments) ------------
    def count(self, query) -> float:
        """Scalar count of a SQL string, fluent query, or conjunction."""
        if isinstance(query, Conjunction):
            return float(self.backend.count(query))
        result = self.execute(query)
        if not result.is_scalar:
            raise QueryError("query is grouped; use execute()")
        return result.scalar

    def count_many(self, predicates: Sequence) -> list[float]:
        """Batched scalar counts.

        Accepts a list of :class:`Conjunction` (the harness's native
        currency) or of SQL/fluent queries; conjunctions go straight to
        the backend's vectorized path.
        """
        predicates = list(predicates)
        if all(isinstance(item, Conjunction) for item in predicates):
            counter = getattr(self.backend, "count_many", None)
            if counter is not None:
                return [float(value) for value in counter(predicates)]
            return [float(self.backend.count(item)) for item in predicates]
        values = []
        for result in self.run_many(predicates):
            if not result.is_scalar:
                raise QueryError("query is grouped; use run_many()")
            values.append(result.scalar)
        return values

    def estimate(self, predicate: Conjunction):
        """Full :class:`QueryEstimate` with error bounds (summaries only)."""
        estimator = getattr(self.backend, "estimate", None)
        if estimator is None:
            raise QueryError(
                f"backend {self.backend!r} does not expose model estimates"
            )
        return estimator(predicate)

    def group_counts(
        self, attrs: Sequence[str], predicate: Conjunction | None = None
    ) -> dict[tuple, float]:
        """Raw grouped counts by label combination (predicate-level)."""
        return self.backend.group_counts(attrs, predicate)

    def __repr__(self):
        return (
            f"Explorer({self.backend!r}, table={self.table_name!r})"
        )
