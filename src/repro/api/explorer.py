"""The :class:`Explorer` — one interactive exploration session.

The paper pitches probabilistic summaries as the engine behind
"human-speed" data exploration (Sec 1): an analyst attaches to a
dataset once, then fires many small counting queries.  The Explorer is
that session object.  It owns

* a :class:`~repro.api.backend.Backend` (exact relation, sample, or
  MaxEnt summary — anything goes),
* a :class:`~repro.plan.Planner` for text and programmatic queries —
  every query normalizes to a :class:`~repro.plan.CanonicalPredicate`,
  routes through the cost/capability model, and runs on the shared
  physical operators (``explain()`` shows the three stages),
* per-session LRU caches keyed on the *canonical* form, so repeated
  interactive queries — including syntactic variants like ``BETWEEN 3
  AND 7`` vs ``x >= 3 AND x <= 7`` — skip label resolution and
  re-inference entirely,
* ``run_many()`` — batched execution through the planner's shared
  batched executor (one vectorized
  :class:`~repro.core.inference.InferenceEngine` pass per backend).

Construction::

    ex = Explorer.attach(relation)                  # exact backend
    ex = Explorer.attach(summary, rounded=True)     # summary backend
    ex = Explorer.open(store, "flights", tag="v2")  # from a SummaryStore
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

from repro.api.query import Query
from repro.errors import QueryError, ReproError
from repro.obs import span
from repro.plan.canonical import CanonicalPredicate
from repro.plan.planner import Planner, QueryPlan, make_cache_key
from repro.query.ast import CountQuery
from repro.query.engine import QueryResult, SQLEngine
from repro.stats.predicates import Conjunction


class _LRUCache:
    """Tiny LRU map; ``maxsize=0`` disables caching entirely.

    Every operation is atomic under an internal lock: one Explorer may
    be shared across threads (the serving layer multiplexes many
    concurrent clients onto one session), and an unguarded
    ``OrderedDict.move_to_end`` racing a ``popitem`` corrupts the map.
    """

    __slots__ = ("maxsize", "data", "hits", "misses", "_lock")

    def __init__(self, maxsize: int):
        self.maxsize = max(int(maxsize), 0)
        self.data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            try:
                value = self.data[key]
            except KeyError:
                self.misses += 1
                return None
            self.data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        if not self.maxsize:
            return
        with self._lock:
            self.data[key] = value
            self.data.move_to_end(key)
            while len(self.data) > self.maxsize:
                self.data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self.data.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """Size/hit/miss snapshot taken under the lock — reading the
        fields piecemeal from another thread can tear (a size from
        after an insert with hit counts from before it)."""
        with self._lock:
            return {
                "size": len(self.data),
                "hits": self.hits,
                "misses": self.misses,
            }


class _InFlight:
    """One in-progress execution other threads can wait on."""

    __slots__ = ("done", "value", "error")

    def __init__(self):
        self.done = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class Explorer:
    """Session facade over one backend: fluent queries, SQL, batching."""

    def __init__(self, backend, *, table_name: str = "R", cache_size: int = 256):
        if not hasattr(backend, "count"):
            raise ReproError(
                f"{type(backend).__name__} is not a query backend "
                "(no count method); use Explorer.attach() for relations "
                "and summaries"
            )
        self.backend = backend
        self.table_name = table_name
        self.engine = SQLEngine(backend, table_name=table_name)
        self.planner: Planner = self.engine.planner
        self._asts = _LRUCache(cache_size)
        self._predicates = _LRUCache(cache_size)
        self._results = _LRUCache(cache_size)
        # Single-flight registry: concurrent threads asking the same
        # canonical query share one execution instead of racing to
        # recompute it (see execute()).
        self._inflight: dict[tuple, _InFlight] = {}
        self._inflight_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        source,
        *,
        rounded: bool = False,
        table_name: str = "R",
        cache_size: int = 256,
    ) -> "Explorer":
        """Open a session on a relation, summary, backend, or Explorer.

        * ``Relation`` → exact full-scan backend,
        * ``EntropySummary`` → model backend (``rounded=True`` applies
          the paper's rounding of estimates below 0.5),
        * ``ShardedSummary`` → shard-merging model backend,
        * any :class:`~repro.api.backend.Backend` (or duck-typed object
          with ``count``) → used as is,
        * an ``Explorer`` → returned unchanged.
        """
        if isinstance(source, Explorer):
            return source
        # Imported lazily: these modules subclass Backend from this
        # package, so top-level imports would be circular.
        from repro.core.sharding import ShardedSummary
        from repro.core.summary import EntropySummary
        from repro.data.relation import Relation

        if isinstance(source, EntropySummary):
            from repro.query.backends import SummaryBackend

            backend = SummaryBackend(source, rounded=rounded)
        elif isinstance(source, ShardedSummary):
            from repro.query.backends import ShardedBackend

            backend = ShardedBackend(source, rounded=rounded)
        elif isinstance(source, Relation):
            from repro.baselines.exact import ExactBackend

            backend = ExactBackend(source)
        else:
            backend = source
        return cls(backend, table_name=table_name, cache_size=cache_size)

    @classmethod
    def open(
        cls,
        store,
        name: str,
        *,
        version: int | None = None,
        tag: str | None = None,
        rounded: bool = False,
        table_name: str = "R",
        cache_size: int = 256,
    ) -> "Explorer":
        """Open a session on a summary stored in a :class:`SummaryStore`
        (or a filesystem path to one)."""
        from repro.api.store import SummaryStore

        if not isinstance(store, SummaryStore):
            store = SummaryStore(store)
        summary = store.load(name, version=version, tag=tag)
        return cls.attach(
            summary, rounded=rounded, table_name=table_name, cache_size=cache_size
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self):
        return self.backend.schema

    @property
    def summary(self):
        """The underlying ``EntropySummary``/``ShardedSummary`` (None
        for non-model backends)."""
        return getattr(self.backend, "summary", None)

    def rounded(self, flag: bool = True) -> "Explorer":
        """A sibling session over the same summary with paper-style
        rounding toggled (summaries only)."""
        if self.summary is None:
            raise ReproError("rounded() requires a summary backend")
        return Explorer.attach(
            self.summary,
            rounded=flag,
            table_name=self.table_name,
            cache_size=self._results.maxsize,
        )

    def describe(self) -> dict:
        """Backend capability card plus session cache statistics."""
        describe = getattr(self.backend, "describe", None)
        card = describe() if describe is not None else {
            "name": getattr(self.backend, "name", type(self.backend).__name__),
            "type": type(self.backend).__name__,
        }
        card["table"] = self.table_name
        card["cache"] = self.cache_info()
        return card

    def cache_info(self) -> dict:
        return {
            "asts": self._asts.stats(),
            "predicates": self._predicates.stats(),
            "results": self._results.stats(),
        }

    def clear_cache(self) -> None:
        """Drop the session caches (and the model caches, if any)."""
        self._asts.clear()
        self._predicates.clear()
        self._results.clear()
        summary = self.summary
        if summary is not None:
            summary.clear_cache()

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self) -> Query:
        """Start a fluent query against this session."""
        return Query(self)

    def sql(self, text: str) -> QueryResult:
        """Execute SQL text (cached)."""
        return self.execute(text)

    @staticmethod
    def _predicate_key(query: CountQuery):
        """Syntactic pre-key of a WHERE clause — maps repeated query
        texts to their cached :class:`CanonicalPredicate` without
        re-resolving labels.  Semantic dedup happens one level down:
        the *result* cache keys on the canonical form itself."""
        return tuple(
            sorted(
                (condition.attribute, condition.op, repr(condition.values))
                for condition in query.conditions
            )
        )

    def _normalize(self, query) -> CountQuery:
        if isinstance(query, Query):
            query = query.to_ast()
        if isinstance(query, str):
            # Raw-text pre-key: repeated interactive queries skip the
            # tokenizer entirely (the semantic dedup still happens at
            # the canonical-predicate level below).
            cached = self._asts.get(query)
            if cached is not None:
                return cached
            parsed = self.planner.parse(query)
            self._asts.put(query, parsed)
            return parsed
        return self.planner.parse(query)

    def _canonical(self, query: CountQuery) -> CanonicalPredicate:
        """Normalize a validated query's WHERE clause (cached)."""
        key = self._predicate_key(query)
        canonical = self._predicates.get(key)
        if canonical is None:
            canonical = self.planner.normalize(query)
            self._predicates.put(key, canonical)
        return canonical

    def plan(self, query: "CountQuery | Query | str") -> QueryPlan:
        """The full normalize → route → execute plan for a query.

        Each stage annotates the ambient request trace when one is
        active (the serving path); standalone use pays one ContextVar
        read per stage and no more."""
        with span("parse"):
            query = self._normalize(query)
        with span("canonicalize"):
            predicate = self._canonical(query)
        with span("route"):
            return self.planner.plan(query, predicate=predicate)

    def explain(self, query: "CountQuery | Query | str") -> str:
        """Render a query's plan: one line per planning stage."""
        return self.plan(query).explain()

    def execute(self, query: "CountQuery | Query | str") -> QueryResult:
        """Execute one query with predicate + result caching.

        Both caches key on canonical forms, so syntactic variants of
        one query (reordered conjuncts, ``BETWEEN`` vs ``>=``/``<=``)
        share entries.  A cache hit stops after the normalize stage —
        routing and execution only run on misses.

        Thread-safe with *single-flight* semantics: when several
        threads miss on the same canonical key at once, exactly one
        runs the backend pass and the others block on its result — no
        double-compute, no cache corruption.  (The serving layer
        multiplexes concurrent clients onto one Explorer and relies on
        this.)
        """
        query = self._normalize(query)
        canonical = self._canonical(query)
        key = make_cache_key(query, canonical)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        with self._inflight_lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = self._inflight[key] = _InFlight()
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value
        # Leadership won — but a previous leader may have completed
        # (cache put + registry pop) between our cache miss and our
        # registration.  Re-check before paying for the backend pass.
        cached = self._results.get(key)
        if cached is not None:
            flight.value = cached
            with self._inflight_lock:
                self._inflight.pop(key, None)
            flight.done.set()
            return cached
        try:
            plan = self.planner.plan(query, predicate=canonical)
            result = self.planner.execute(plan)
            self._results.put(key, result)
            flight.value = result
            return result
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            flight.done.set()

    def run_many(
        self, queries: Sequence["CountQuery | Query | str"]
    ) -> list[QueryResult]:
        """Execute a batch of queries, vectorizing where possible.

        Plans run through the planner's shared batched executor: all
        batchable scalar ``COUNT(*)`` plans go through one
        :meth:`InferenceEngine.estimate_masks_batch` pass on model
        backends (one polynomial evaluation for the whole batch instead
        of one per query); contradictions answer ``0`` without touching
        the backend; grouped and SUM/AVG queries run per-query.
        Results come back in input order and populate the session cache
        like sequential ``run()`` calls.
        """
        parsed = [self._normalize(query) for query in queries]
        canonicals = [self._canonical(query) for query in parsed]
        keys = [
            make_cache_key(query, canonical)
            for query, canonical in zip(parsed, canonicals)
        ]
        results: list[QueryResult | None] = [
            self._results.get(key) for key in keys
        ]
        # Equivalent queries inside one batch share a canonical key, so
        # each distinct key is planned and evaluated once; cache hits
        # are never planned at all.
        pending: dict[tuple, list[int]] = {}
        for index, result in enumerate(results):
            if result is None:
                pending.setdefault(keys[index], []).append(index)
        unique = [
            self.planner.plan(parsed[indices[0]], predicate=canonicals[indices[0]])
            for indices in pending.values()
        ]
        for indices, result in zip(
            pending.values(), self.planner.execute_many(unique)
        ):
            self._results.put(keys[indices[0]], result)
            for index in indices:
                results[index] = result
        return results  # type: ignore[return-value]

    # -- predicate-level entry points (harness, experiments) ------------
    def count(self, query) -> float:
        """Scalar count of a SQL string, fluent query, or conjunction."""
        if isinstance(query, Conjunction):
            plan = self.planner.plan_conjunction(query)
            return float(self.planner.execute(plan).scalar)
        result = self.execute(query)
        if not result.is_scalar:
            raise QueryError("query is grouped; use execute()")
        return result.scalar

    def count_many(self, predicates: Sequence) -> list[float]:
        """Batched scalar counts.

        Accepts a list of :class:`Conjunction` (the harness's native
        currency) or of SQL/fluent queries.  Either way the batch runs
        through the planner's shared batched executor, so conjunctions
        get the same routing (shard pruning, vectorized backend passes)
        as SQL text.
        """
        predicates = list(predicates)
        if all(isinstance(item, Conjunction) for item in predicates):
            plans = [
                self.planner.plan_conjunction(item) for item in predicates
            ]
            return [
                float(result.scalar)
                for result in self.planner.execute_many(plans)
            ]
        values = []
        for result in self.run_many(predicates):
            if not result.is_scalar:
                raise QueryError("query is grouped; use run_many()")
            values.append(result.scalar)
        return values

    def estimate(self, predicate: Conjunction):
        """Full :class:`QueryEstimate` with error bounds (summaries only)."""
        estimator = getattr(self.backend, "estimate", None)
        if estimator is None:
            raise QueryError(
                f"backend {self.backend!r} does not expose model estimates"
            )
        return estimator(predicate)

    def group_counts(
        self, attrs: Sequence[str], predicate: Conjunction | None = None
    ) -> dict[tuple, float]:
        """Raw grouped counts by label combination (predicate-level)."""
        return self.backend.group_counts(attrs, predicate)

    def __repr__(self):
        return (
            f"Explorer({self.backend!r}, table={self.table_name!r})"
        )
