"""The fluent, chainable query builder behind ``Explorer.query()``.

Django-style lookups express the paper's conjunctive counting queries
without SQL strings::

    ex.query().where(distance__ge=1000).run()                 # COUNT(*)
    ex.query().where(origin_state="CA", dest_state__in=("NY", "WA")).run()
    ex.query().where(distance__ge=1000).group_by("origin_state")
      .order("desc").limit(10).run()
    ex.query().sum("distance").where(origin_state="CA").run() # SUM

Supported lookup suffixes: ``__eq`` (default), ``__ne``, ``__lt``,
``__le``, ``__gt``, ``__ge``, ``__in`` (iterable), ``__between``
(2-sequence).  ``run()`` executes through the owning Explorer (and its
caches); building a query never touches the backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import QueryError
from repro.query.ast import Condition, CountQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.explorer import Explorer
    from repro.query.engine import QueryResult

#: lookup suffix → Condition operator
_LOOKUPS = {
    "eq": "=",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "in": "in",
    "between": "between",
}


def _condition_from_lookup(lookup: str, value) -> Condition:
    """``distance__ge=1000`` → ``Condition("distance", ">=", [1000])``."""
    attribute, separator, suffix = lookup.rpartition("__")
    if not separator:
        attribute, suffix = lookup, "eq"
    op = _LOOKUPS.get(suffix)
    if op is None:
        # An attribute whose name itself contains "__" (no known suffix).
        attribute, op = lookup, "="
        suffix = "eq"
    if op == "in":
        values = list(value)
    elif op == "between":
        values = list(value)
        if len(values) != 2:
            raise QueryError(
                f"{lookup}=... needs a (low, high) pair, got {value!r}"
            )
    else:
        values = [value]
    return Condition(attribute, op, values)


class Query:
    """One query under construction; every method returns ``self``."""

    __slots__ = (
        "_explorer", "_conditions", "_group_by", "_order", "_limit",
        "_aggregate", "_aggregate_attr",
    )

    def __init__(self, explorer: "Explorer"):
        self._explorer = explorer
        self._conditions: list[Condition] = []
        self._group_by: list[str] = []
        self._order: str | None = None
        self._limit: int | None = None
        self._aggregate = "count"
        self._aggregate_attr: str | None = None

    # -- WHERE -----------------------------------------------------------
    def where(self, *conditions: Condition, **lookups) -> "Query":
        """Add conjunctive conditions (all must hold, Eq. 16).

        Positional arguments are raw :class:`Condition` objects; keyword
        arguments use the lookup syntax documented in the module
        docstring.
        """
        for condition in conditions:
            if not isinstance(condition, Condition):
                raise QueryError(
                    f"positional where() arguments must be Conditions, "
                    f"got {type(condition).__name__}"
                )
            self._conditions.append(condition)
        for lookup, value in lookups.items():
            self._conditions.append(_condition_from_lookup(lookup, value))
        return self

    # -- GROUP BY / ORDER / LIMIT ---------------------------------------
    def group_by(self, *attrs: str) -> "Query":
        """Group counts by one or more attributes."""
        self._group_by.extend(attrs)
        return self

    def order(self, direction: str = "desc") -> "Query":
        """Order grouped rows by count (``"asc"`` or ``"desc"``)."""
        self._order = direction
        return self

    def limit(self, count: int) -> "Query":
        """Keep only the first ``count`` grouped rows."""
        self._limit = count
        return self

    # -- aggregate selection --------------------------------------------
    def count(self) -> "Query":
        """Aggregate ``COUNT(*)`` (the default)."""
        self._aggregate, self._aggregate_attr = "count", None
        return self

    def sum(self, attr: str) -> "Query":
        """Aggregate ``SUM(attr)`` (numeric attributes only)."""
        self._aggregate, self._aggregate_attr = "sum", attr
        return self

    def avg(self, attr: str) -> "Query":
        """Aggregate ``AVG(attr)`` (numeric attributes only)."""
        self._aggregate, self._aggregate_attr = "avg", attr
        return self

    # -- terminals -------------------------------------------------------
    def to_ast(self) -> CountQuery:
        """The backend-agnostic :class:`CountQuery` this builder denotes."""
        return CountQuery(
            table=self._explorer.table_name,
            group_by=self._group_by,
            conditions=self._conditions,
            order=self._order,
            limit=self._limit,
            aggregate=self._aggregate,
            aggregate_attr=self._aggregate_attr,
        )

    def run(self) -> "QueryResult":
        """Execute through the Explorer (cached)."""
        return self._explorer.execute(self.to_ast())

    def value(self) -> float:
        """Execute and unwrap the scalar answer."""
        result = self.run()
        if not result.is_scalar:
            raise QueryError("query is grouped; use run()")
        return result.scalar

    def __repr__(self):
        return f"Query({self.to_ast()!r})"
