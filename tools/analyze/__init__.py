"""repro-analyze: repo-specific static analysis for the repro codebase.

Generic linters gate syntax; this package gates the *invariants* the
concurrency-heavy layers rely on — no blocking calls on the serve event
loop, lock-guarded fields only touched under their lock, deprecated
builders never reintroduced, process-pool payloads picklable, raises
drawn from the ``repro.errors`` hierarchy, threads with a named
join/shutdown path.

Entry points:

* ``python -m tools.analyze [paths]`` — the CLI (``make analyze``);
* :func:`tools.analyze.core.analyze_paths` — programmatic API;
* :mod:`tools.analyze.lockorder` — the test-time lock-order watchdog
  (opt-in via ``REPRO_LOCKORDER=1`` or ``pytest --lockorder``).

Each rule is one class in :mod:`tools.analyze.rules`; adding a checker
is writing one class and registering it (see ``docs/analysis.md``).
"""

from tools.analyze.core import (  # noqa: F401  (public re-exports)
    Module,
    Rule,
    Violation,
    analyze_paths,
    default_rules,
    register,
)

__version__ = "1.0"
