"""The repro-specific rule set.

Each rule encodes one invariant the codebase actually relies on — see
``docs/analysis.md`` for the catalogue and the hazard each one guards
against.  Rules are pure AST walks over one :class:`~tools.analyze.core.Module`;
cross-module reasoning (e.g. "is this receiver *really* a SummaryStore")
is intentionally out of scope, so receivers are matched by name shape
and false positives are silenced with ``# repro: ignore[rule]`` plus a
reason.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from tools.analyze.core import Module, Rule, Violation, register

# ----------------------------------------------------------------------
# async-blocking
# ----------------------------------------------------------------------

#: Call targets that block the calling thread outright.
_BLOCKING_CALLS = {
    "time.sleep",
    "open",
    "input",
    "socket.create_connection",
    "socket.socket",
    "fcntl.flock",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "os.waitpid",
    "shutil.copy",
    "shutil.copytree",
    "shutil.rmtree",
    "requests.get",
    "requests.post",
    "urllib.request.urlopen",
}

#: Method names that are file I/O on any receiver (pathlib idiom).
_BLOCKING_METHODS = {
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
    "unlink",
    "mkdir",
    "rglob",
}

#: Socket method names that block on network I/O regardless of
#: receiver — ``sendall``/``recv``/``accept``/``makefile`` are socket
#: API and nothing else.  The binary wire protocol made raw-socket
#: code adjacent to the event loop (``serve/wire.py`` frames bytes the
#: sync ``ServeClient`` sends with exactly these calls); coroutines
#: must stay on the asyncio stream API (``reader.readexactly``,
#: ``writer.write``/``drain``) instead.
_SOCKET_METHODS = {
    "sendall",
    "recv",
    "recv_into",
    "recvfrom",
    "accept",
    "makefile",
}

#: Socket methods whose names are too generic to flag on any receiver
#: (``queue.Queue.get`` exists, generators have ``send``); these only
#: flag when the receiver names a socket or connection.
_SOCKET_METHODS_NAMED_RECEIVER = {
    "send",
    "sendto",
    "connect",
    "settimeout",
}

#: Methods that hit the store's manifest / model files; blocking when
#: the receiver names a store.  ``SummaryStore.load`` on a 100-shard
#: version reads 200 files — milliseconds to seconds of stalled loop.
_STORE_METHODS = {
    "load",
    "load_with_record",
    "load_model",
    "latest_version",
    "save",
    "record",
    "list",
    "versions",
    "delete",
}


@register
class AsyncBlockingRule(Rule):
    """Blocking calls inside ``async def`` bodies in the serve layer.

    The serve event loop multiplexes every connected client; one
    blocking call inside a coroutine stalls *all* of them.  Blocking
    work belongs behind ``loop.run_in_executor`` (callables handed to
    it — lambdas, nested defs — run on executor threads and are
    exempt).
    """

    name = "async-blocking"
    summary = (
        "no blocking calls (sleep, file I/O, raw socket sends/recvs, "
        "subprocess, SummaryStore loads) inside async def bodies in "
        "serve/"
    )
    scope = ("src/repro/serve/*.py", "src/repro/serve/**/*.py")

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(module, node)

    def _check_coroutine(
        self, module: Module, coroutine: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        for node in self._walk_same_execution(coroutine):
            if not isinstance(node, ast.Call):
                continue
            name = Module.qualname(node.func)
            if name is None:
                continue
            reason = self._blocking_reason(name)
            if reason is not None:
                yield self.violation(
                    module,
                    node,
                    f"{reason} inside `async def {coroutine.name}` blocks "
                    "the serve event loop; run it via "
                    "loop.run_in_executor (callables handed to the "
                    "executor are exempt)",
                )

    @staticmethod
    def _blocking_reason(name: str) -> str | None:
        if name in _BLOCKING_CALLS:
            return f"blocking call {name}()"
        head, _, tail = name.rpartition(".")
        if tail in _BLOCKING_METHODS:
            return f"blocking file I/O {name}()"
        if tail in _SOCKET_METHODS:
            return f"blocking socket call {name}()"
        if tail in _SOCKET_METHODS_NAMED_RECEIVER and any(
            hint in head.lower() for hint in ("sock", "conn")
        ):
            return f"blocking socket call {name}()"
        if tail in _STORE_METHODS and "store" in head.lower():
            return f"blocking store I/O {name}()"
        return None

    @staticmethod
    def _walk_same_execution(coroutine: ast.AsyncFunctionDef):
        """Walk the coroutine body without descending into nested
        defs/lambdas — those execute later, typically on executor
        threads, where blocking is the point."""
        stack = list(ast.iter_child_nodes(coroutine))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------

#: Seed registry: class name -> {guarded attribute -> lock attribute}.
#: These are the fields the serve/api layers mutate from multiple
#: threads today.  New guarded fields should use the in-source
#: ``# guarded-by: _lock`` annotation instead of growing this table.
GUARDED_FIELDS: dict[str, dict[str, str]] = {
    # serve/cache.py — executor threads and the event loop both touch
    # it (hit/miss/eviction counters moved into the obs registry, which
    # guards itself; only the table itself still needs the cache lock)
    "TTLCache": {
        "_data": "_lock",
    },
    # serve/admission.py — counted on every request from many tasks
    # (admitted/rejected counters live in the obs registry now)
    "AdmissionController": {
        "_depth": "_lock",
        "_per_client": "_lock",
        "_service_ewma": "_lock",
    },
    # api/explorer.py — the session caches the serving layer shares
    "_LRUCache": {"data": "_lock", "hits": "_lock", "misses": "_lock"},
    "Explorer": {"_inflight": "_inflight_lock"},
    # serve/server.py — named-session map on the shared generation
    "_Generation": {"_sessions": "_lock"},
    "SummaryServer": {},  # seeded so annotations in server.py attach here
}

#: Methods where unguarded access is fine: construction happens-before
#: any sharing.
_CONSTRUCTION = {"__init__", "__new__", "__post_init__"}


@register
class LockDisciplineRule(Rule):
    """Guarded attributes may only be touched under their lock.

    An attribute is *guarded* when the seed registry above or an
    in-source ``# guarded-by: _lock`` comment (on its ``__init__``
    assignment or class-body declaration) names its lock.  Every
    ``self.<attr>`` read/write in the owning class must then sit
    lexically inside ``with self.<lock>:`` — or inside a method marked
    ``# repro: holds[<lock>]``, which documents (and exempts) the
    callers-hold-the-lock convention.
    """

    name = "lock-discipline"
    summary = (
        "registry/annotation-guarded attributes only touched inside "
        "`with self.<lock>` blocks"
    )
    scope = ("src/repro/*.py", "src/repro/**/*.py")

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: Module, class_def: ast.ClassDef
    ) -> Iterator[Violation]:
        guards = dict(GUARDED_FIELDS.get(class_def.name, {}))
        guards.update(self._annotated_guards(module, class_def))
        if not guards:
            return
        for item in class_def.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _CONSTRUCTION:
                continue
            held = module.holds.get(item.lineno)
            for node in ast.walk(item):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guards
                ):
                    continue
                lock = guards[node.attr]
                if held == lock or self._under_lock(node, lock, item):
                    continue
                yield self.violation(
                    module,
                    node,
                    f"self.{node.attr} is guarded by self.{lock} but "
                    f"accessed outside a `with self.{lock}` block in "
                    f"{class_def.name}.{item.name}; hold the lock, or "
                    f"mark the method `# repro: holds[{lock}]` if every "
                    "caller already does",
                )

    @staticmethod
    def _annotated_guards(
        module: Module, class_def: ast.ClassDef
    ) -> dict[str, str]:
        """``# guarded-by:`` comments on class-body declarations or on
        ``self.x = ...`` assignments anywhere inside the class."""
        guards: dict[str, str] = {}
        for node in ast.walk(class_def):
            lock = module.guarded_by.get(getattr(node, "lineno", -1))
            if lock is None:
                continue
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    guards[target.id] = lock
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guards[target.attr] = lock
        return guards

    @staticmethod
    def _under_lock(node: ast.AST, lock: str, method: ast.AST) -> bool:
        """Is ``node`` lexically inside ``with self.<lock>:`` (within
        the method), or part of the with-header itself?"""
        wanted = f"self.{lock}"
        for parent in Module.parents(node):
            if isinstance(parent, (ast.With, ast.AsyncWith)):
                for item in parent.items:
                    if Module.qualname(item.context_expr) == wanted:
                        return True
                    # `with self._lock.acquire_timeout(...)` style
                    call = item.context_expr
                    if (
                        isinstance(call, ast.Call)
                        and Module.qualname(call.func) is not None
                        and Module.qualname(call.func).startswith(wanted + ".")
                    ):
                        return True
            if parent is method:
                break
        return False


# ----------------------------------------------------------------------
# deprecated-api
# ----------------------------------------------------------------------

#: Class constructions that bypass the public facade.  ``repro.api``
#: and ``plan/`` are the blessed call sites (scoped out below); tests
#: are out of scope entirely (rule scope is src/).
_DEPRECATED_CONSTRUCTORS = {
    "SQLEngine": "construct queries through Explorer/Planner (repro.api)",
    "SummaryBackend": "use Explorer.attach(summary) (repro.api)",
    "ShardedBackend": "use Explorer.attach(sharded_summary) (repro.api)",
}


@register
class DeprecatedApiRule(Rule):
    """No new calls to retired construction paths.

    ``EntropySummary.build`` survives only as a deprecation shim, and
    backend/engine objects are wired up by the ``repro.api`` facade;
    code that constructs them directly dodges the planner and the
    session caches.  The defining module is exempt (a class may build
    its own kind), as are ``repro.api`` and ``plan/``.
    """

    name = "deprecated-api"
    summary = (
        "no EntropySummary.build calls; no direct SQLEngine/"
        "SummaryBackend/ShardedBackend construction outside repro.api"
    )
    scope = ("src/repro/*.py", "src/repro/**/*.py")
    exclude = (
        "src/repro/api/*.py",
        "src/repro/plan/*.py",
    )

    def check(self, module: Module) -> Iterator[Violation]:
        defined_here = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = Module.qualname(node.func)
            if name is None:
                continue
            if name.endswith("EntropySummary.build") or name == "build" and (
                isinstance(node.func, ast.Attribute)
                and Module.qualname(node.func.value) == "EntropySummary"
            ):
                yield self.violation(
                    module,
                    node,
                    "EntropySummary.build() is a deprecated shim; build "
                    "through repro.api.SummaryBuilder",
                )
                continue
            if name in _DEPRECATED_CONSTRUCTORS and name not in defined_here:
                yield self.violation(
                    module,
                    node,
                    f"direct {name}() construction bypasses the session "
                    f"facade; {_DEPRECATED_CONSTRUCTORS[name]}",
                )


# ----------------------------------------------------------------------
# executor-pickle-safety
# ----------------------------------------------------------------------


@register
class ExecutorPickleSafetyRule(Rule):
    """Only payload-shipping into ``ProcessPoolExecutor`` / ``Process``.

    Worker processes receive work by pickling; lambdas, nested
    functions, and bound methods do not pickle (or drag a whole object
    graph across the fork).  The sharding design ships plain payload
    tuples to module-level workers — this rule keeps it that way, for
    both executor submissions and the cluster tier's direct
    ``Process(target=...)`` spawn path (where the spawn start method
    pickles the target and every arg into the child).
    """

    name = "executor-pickle-safety"
    summary = (
        "no lambdas / nested functions / bound methods submitted to a "
        "ProcessPoolExecutor or spawned via Process(target=...) — "
        "module-level callables and payloads only"
    )
    scope = ("src/repro/*.py", "src/repro/**/*.py")

    def check(self, module: Module) -> Iterator[Violation]:
        module_level = {
            node.name
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        yield from self._check_process_spawns(module, module_level)
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            pools = self._process_pools(scope)
            if not pools:
                continue
            nested = {
                node.name
                for node in ast.walk(scope)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not scope
            }
            for node in ast.walk(scope):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"submit", "map"}
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in pools
                ):
                    continue
                yield from self._check_submission(
                    module, node, module_level, nested
                )

    def _check_submission(
        self,
        module: Module,
        call: ast.Call,
        module_level: set[str],
        nested: set[str],
    ) -> Iterator[Violation]:
        if not call.args:
            return
        target, *payload = call.args
        verb = call.func.attr  # type: ignore[attr-defined]
        if isinstance(target, ast.Lambda):
            yield self.violation(
                module,
                call,
                f"lambda submitted to ProcessPoolExecutor.{verb}() cannot "
                "be pickled; use a module-level function",
            )
        elif isinstance(target, ast.Name) and target.id in nested:
            yield self.violation(
                module,
                call,
                f"nested function {target.id!r} submitted to "
                f"ProcessPoolExecutor.{verb}() closes over local state "
                "and cannot be pickled; hoist it to module level and "
                "ship its inputs as a payload",
            )
        elif (
            isinstance(target, ast.Attribute)
            and Module.qualname(target) is not None
            and Module.qualname(target).startswith("self.")
        ):
            yield self.violation(
                module,
                call,
                f"bound method {Module.qualname(target)} submitted to "
                f"ProcessPoolExecutor.{verb}() pickles the whole "
                "instance; use a module-level function plus a payload",
            )
        elif isinstance(target, ast.Name) and target.id not in (
            module_level | _ALLOWED_BUILTIN_TARGETS
        ) and target.id not in module_imported_names(module):
            # A name that is neither module-level, imported, nor a
            # builtin is a local binding — almost always a closure.
            yield self.violation(
                module,
                call,
                f"locally-bound callable {target.id!r} submitted to "
                f"ProcessPoolExecutor.{verb}(); submit a module-level "
                "function so workers can unpickle it",
            )
        for extra in payload:
            if isinstance(extra, ast.Lambda):
                yield self.violation(
                    module,
                    extra,
                    f"lambda in ProcessPoolExecutor.{verb}() arguments "
                    "cannot be pickled; ship plain payload data",
                )

    def _check_process_spawns(
        self, module: Module, module_level: set[str]
    ) -> Iterator[Violation]:
        """The ``Process(target=...)`` spawn path, anywhere in the module.

        Matched by the ``target=`` keyword on any ``*.Process(...)``
        call, so ``multiprocessing.Process``, a spawn context's
        ``ctx.Process``, and bare ``Process`` are all covered while
        target-less constructors (``psutil.Process(pid)``) are not.
        """
        nested = {
            inner.name
            for scope in ast.walk(module.tree)
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
            for inner in ast.walk(scope)
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
            and inner is not scope
        }
        imported = module_imported_names(module)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and (Module.qualname(node.func) or "").split(".")[-1]
                == "Process"
            ):
                continue
            target = next(
                (kw.value for kw in node.keywords if kw.arg == "target"),
                None,
            )
            if target is None:
                continue
            if isinstance(target, ast.Lambda):
                yield self.violation(
                    module,
                    node,
                    "lambda as Process target cannot be pickled under "
                    "the spawn start method; use a module-level function",
                )
            elif isinstance(target, ast.Name) and target.id in nested:
                yield self.violation(
                    module,
                    node,
                    f"nested function {target.id!r} as Process target "
                    "closes over local state and cannot be pickled under "
                    "the spawn start method; hoist it to module level "
                    "and ship its inputs through args=",
                )
            elif (
                isinstance(target, ast.Attribute)
                and Module.qualname(target) is not None
                and Module.qualname(target).startswith("self.")
            ):
                yield self.violation(
                    module,
                    node,
                    f"bound method {Module.qualname(target)} as Process "
                    "target pickles the whole instance into the child; "
                    "use a module-level function plus a payload spec",
                )
            elif isinstance(target, ast.Name) and target.id not in (
                module_level | _ALLOWED_BUILTIN_TARGETS | imported
            ):
                yield self.violation(
                    module,
                    node,
                    f"locally-bound callable {target.id!r} as Process "
                    "target; spawn a module-level function so the child "
                    "can unpickle it",
                )
            args_kw = next(
                (kw.value for kw in node.keywords if kw.arg == "args"),
                None,
            )
            if isinstance(args_kw, (ast.Tuple, ast.List)):
                for element in args_kw.elts:
                    if isinstance(element, ast.Lambda):
                        yield self.violation(
                            module,
                            element,
                            "lambda in Process args cannot be pickled "
                            "under the spawn start method; ship plain "
                            "payload data",
                        )

    @staticmethod
    def _process_pools(scope: ast.AST) -> set[str]:
        """Names bound to a ProcessPoolExecutor in this function."""
        pools: set[str] = set()
        for node in ast.walk(scope):
            value = None
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        pools.update(
                            _pool_name(item.optional_vars, item.context_expr)
                        )
                continue
            if target is not None and value is not None:
                pools.update(_pool_name(target, value))
        return pools


_ALLOWED_BUILTIN_TARGETS = {"print", "len", "sum", "max", "min"}


def _pool_name(target: ast.expr, value: ast.expr) -> set[str]:
    if not isinstance(target, ast.Name):
        return set()
    if isinstance(value, ast.Call):
        name = Module.qualname(value.func) or ""
        if name.split(".")[-1] == "ProcessPoolExecutor":
            return {target.id}
    return set()


def module_imported_names(module: Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            names.update(alias.asname or alias.name.split(".")[0]
                         for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.asname or alias.name for alias in node.names)
    return names


# ----------------------------------------------------------------------
# error-hierarchy
# ----------------------------------------------------------------------

#: Builtin exceptions callers of a library cannot reasonably catch as
#: "a repro failure".  Protocol-level builtins stay allowed: raising
#: KeyError from a mapping, TypeError from a duck-typing check, or
#: NotImplementedError from an abstract method is the Python contract.
_ALLOWED_BUILTINS = {
    "NotImplementedError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "TypeError",
    "StopIteration",
    "StopAsyncIteration",
    "SystemExit",
    "KeyboardInterrupt",
    "AssertionError",
}

_BUILTIN_EXCEPTIONS = {
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
}


@register
class ErrorHierarchyRule(Rule):
    """Intentional raises use the ``repro.errors`` hierarchy.

    The library's contract is "catch :class:`ReproError` and you have
    caught every failure we raise on purpose" — a stray ``ValueError``
    for a bad tuning knob breaks that promise.  Builtin exceptions are
    allowed only where Python's own protocols demand them (see the
    allowlist above).
    """

    name = "error-hierarchy"
    summary = (
        "raises in src/repro use the errors.py hierarchy; builtin "
        "exceptions only from the protocol allowlist"
    )
    scope = ("src/repro/*.py", "src/repro/**/*.py")

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = Module.qualname(exc)
            if name is None or "." in name:
                continue  # re-raised variable or qualified name
            if name in _BUILTIN_EXCEPTIONS and name not in _ALLOWED_BUILTINS:
                yield self.violation(
                    module,
                    node,
                    f"raise {name} breaks the `except ReproError` "
                    "contract; raise the matching repro.errors class "
                    "(or add the builtin to the protocol allowlist "
                    "with a comment saying why)",
                )


# ----------------------------------------------------------------------
# bare-thread-start
# ----------------------------------------------------------------------


@register
class BareThreadRule(Rule):
    """Threads and locks in serve/ + ingest/ must be accounted for.

    A non-daemon thread with no ``join`` anywhere in the module keeps
    the interpreter alive past shutdown; an anonymous lock (created
    inline, never bound to a name) cannot be named by a guarded-by
    annotation or a shutdown path.  Threads must either be daemons or
    have their binding ``.join(...)``-ed in the same module; locks must
    be bound to a variable or attribute.
    """

    name = "bare-thread-start"
    summary = (
        "threading.Thread needs daemon=True or a module-visible join; "
        "threading.Lock/RLock must be bound to a name"
    )
    scope = (
        "src/repro/serve/*.py",
        "src/repro/serve/**/*.py",
        "src/repro/ingest/*.py",
        "src/repro/ingest/**/*.py",
    )

    def check(self, module: Module) -> Iterator[Violation]:
        joined = self._joined_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = Module.qualname(node.func) or ""
            tail = name.split(".")[-1]
            if tail == "Thread" and name in {"Thread", "threading.Thread"}:
                yield from self._check_thread(module, node, joined)
            elif tail in {"Lock", "RLock"} and name in {
                "Lock",
                "RLock",
                "threading.Lock",
                "threading.RLock",
            }:
                yield from self._check_lock(module, node)

    def _check_thread(
        self, module: Module, call: ast.Call, joined: set[str]
    ) -> Iterator[Violation]:
        for keyword in call.keywords:
            if keyword.arg == "daemon":
                if (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return  # daemon: cannot outlive the interpreter
                break
        bound = self._binding(call)
        if bound is not None and bound in joined:
            return
        hint = (
            f"binding {bound!r} is never .join()-ed in this module"
            if bound is not None
            else "it is never bound, so nothing can join it"
        )
        yield self.violation(
            module,
            call,
            f"daemonless threading.Thread with no shutdown path ({hint}); "
            "pass daemon=True or join it on the shutdown path",
        )

    def _check_lock(
        self, module: Module, call: ast.Call
    ) -> Iterator[Violation]:
        if self._binding(call) is None:
            yield self.violation(
                module,
                call,
                "anonymous threading.Lock/RLock (not bound to a name) "
                "cannot be referenced by lock-discipline annotations or "
                "a shutdown path; assign it to an attribute",
            )

    @staticmethod
    def _binding(call: ast.Call) -> str | None:
        """The name/attribute this call's result is assigned to, if any."""
        parent = getattr(call, "parent", None)
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            name = Module.qualname(target)
            return name
        if isinstance(parent, (ast.AnnAssign,)):
            return Module.qualname(parent.target)
        return None

    @staticmethod
    def _joined_names(module: Module) -> set[str]:
        """Every receiver of an explicit ``.join(...)`` in the module.

        ``self._thread.join(timeout=10)`` marks both ``self._thread``
        and ``_thread`` (attribute bindings are recorded either way).
        """
        joined: set[str] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
            ):
                name = Module.qualname(node.func.value)
                if name is not None:
                    joined.add(name)
                    joined.add(name.split(".")[-1])
        return joined


# ----------------------------------------------------------------------
# metrics-discipline
# ----------------------------------------------------------------------


@register
class MetricsDisciplineRule(Rule):
    """Serving-layer counters belong in the obs registry.

    PR 9 moved every operational counter in serve/ into the shared
    :class:`repro.obs.MetricsRegistry` — one lock, one snapshot, one
    Prometheus scrape.  A class that grows a *public* bare-int counter
    (``self.hits = 0`` in ``__init__``, ``self.hits += 1`` elsewhere)
    re-introduces the torn-read/stats-drift problem the registry
    solved: the field is invisible to ``metrics``/``repro top`` and is
    read without the registry's snapshot consistency.  Private
    bookkeeping (``self._next_id += 1``) and non-integer state are out
    of scope — this rule is about *observable* counters only.
    """

    name = "metrics-discipline"
    summary = (
        "public int counters in serve/ classes (self.x = 0 then "
        "self.x += N) must live in the obs MetricsRegistry, not as "
        "bare attributes"
    )
    scope = ("src/repro/serve/*.py", "src/repro/serve/**/*.py")

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: Module, class_def: ast.ClassDef
    ) -> Iterator[Violation]:
        seeded = self._int_seeded_fields(class_def)
        if not seeded:
            return
        for item in class_def.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _CONSTRUCTION:
                continue
            for node in ast.walk(item):
                if not (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, (ast.Add, ast.Sub))
                    and isinstance(node.target, ast.Attribute)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id == "self"
                    and node.target.attr in seeded
                ):
                    continue
                counter = node.target.attr
                yield self.violation(
                    module,
                    node,
                    f"self.{counter} is a bare int counter "
                    f"(initialized to a literal in {class_def.name}."
                    "__init__, bumped here); register it on the shared "
                    "obs MetricsRegistry (registry.counter(...).inc()) "
                    "so scrapes and stats() see one consistent snapshot",
                )

    @staticmethod
    def _int_seeded_fields(class_def: ast.ClassDef) -> set[str]:
        """Public ``self.<name> = <int literal>`` assignments in
        construction methods."""
        seeded: set[str] = set()
        for item in class_def.body:
            if not (
                isinstance(item, ast.FunctionDef)
                and item.name in _CONSTRUCTION
            ):
                continue
            for node in ast.walk(item):
                targets: list[ast.expr] = []
                value = None
                if isinstance(node, ast.Assign):
                    targets, value = list(node.targets), node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if not (
                    isinstance(value, ast.Constant)
                    and type(value.value) is int
                ):
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and not target.attr.startswith("_")
                    ):
                        seeded.add(target.attr)
        return seeded
