"""Reporters: one human-readable stream, one machine-readable JSON.

The JSON document (``schema_version: 1``) is what CI uploads as an
artifact and what downstream tooling (dashboards, the perf gate's
sibling) consumes; its shape is pinned by ``tests/test_analyze.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from tools.analyze.core import Report


def render_human(report: Report) -> str:
    """One line per violation plus a summary footer."""
    lines = [violation.render() for violation in report.violations]
    for error in report.parse_errors:
        lines.append(f"parse error: {error}")
    active = sum(1 for _ in report.rules)
    counts = ", ".join(
        f"{name}={count}"
        for name, count in sorted(report.rules.items())
        if count
    )
    footer = (
        f"repro-analyze: {len(report.violations)} violation(s) "
        f"({report.suppressed} suppressed) across {report.files_scanned} "
        f"file(s), {active} rule(s) active"
    )
    if counts:
        footer += f" [{counts}]"
    lines.append(footer)
    return "\n".join(lines)


def render_json(report: Report) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True)


def write_json(report: Report, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_json(report) + "\n")
    return path
