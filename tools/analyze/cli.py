"""The ``repro-analyze`` command line (``python -m tools.analyze``).

Exit codes: 0 clean, 1 violations or parse errors, 2 usage errors —
the CI ``analyze`` job gates on exactly this.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running both as ``python -m tools.analyze`` (package) and as a
# bare script from the repo root.
if __package__ in (None, ""):  # pragma: no cover - script invocation
    sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from tools.analyze.core import analyze_paths, default_rules
from tools.analyze.report import render_human, render_json, write_json


def _parse_rule_list(text: str | None) -> list[str] | None:
    if text is None:
        return None
    return [name.strip() for name in text.split(",") if name.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Repo-specific static analysis: async-blocking, "
            "lock-discipline, deprecated-api, executor-pickle-safety, "
            "error-hierarchy, bare-thread-start."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root that rule pathspecs are relative to (default: .)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="stdout format (default: human)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for name, rule in sorted(default_rules().items()):
            print(f"{name}: {rule.summary}")
            print(f"    scope: {', '.join(rule.scope)}")
        return 0
    try:
        report = analyze_paths(
            args.paths,
            root=args.root,
            select=_parse_rule_list(args.select),
            ignore=_parse_rule_list(args.ignore),
        )
    except ValueError as error:
        print(f"repro-analyze: {error}", file=sys.stderr)
        return 2
    if args.out:
        write_json(report, args.out)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_human(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
