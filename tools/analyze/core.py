"""The repro-analyze framework: modules, rules, suppression, scoping.

A :class:`Module` is one parsed source file with parent-linked AST
nodes plus the side-channel annotations rules consume:

* ``# repro: ignore[rule-a,rule-b]`` / ``# repro: ignore`` — suppress
  matching violations reported on that line;
* ``# guarded-by: _lock`` — declare the attribute assigned on that
  line as guarded by ``self._lock`` (consumed by lock-discipline);
* ``# repro: holds[_lock]`` — declare that every caller of the
  function defined on that line already holds ``self._lock``.

A :class:`Rule` owns a name, a one-line summary, a pathspec scope
(fnmatch globs over repo-relative posix paths, with optional
excludes), and a ``check(module)`` generator.  Rules register
themselves into a process-wide registry via :func:`register`;
:func:`analyze_paths` walks files, matches scopes, collects
violations, and drops suppressed ones.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Iterator

_IGNORE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_,\s-]*)\])?")
_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_HOLDS = re.compile(r"#\s*repro:\s*holds\[([A-Za-z_][A-Za-z0-9_]*)\]")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and a human-readable message."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Module:
    """One parsed source file plus its comment annotations.

    Every AST node gains a ``parent`` attribute so rules can ask for a
    node's lexical context (enclosing function, enclosing ``with``).
    """

    def __init__(self, relpath: str, source: str):
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source)
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child.parent = node  # type: ignore[attr-defined]
        #: line -> None (suppress every rule) or frozenset of rule names.
        self.suppressions: dict[int, frozenset[str] | None] = {}
        #: line -> lock attribute name (``# guarded-by: _lock``).
        self.guarded_by: dict[int, str] = {}
        #: line -> lock attribute name (``# repro: holds[_lock]``).
        self.holds: dict[int, str] = {}
        self._scan_comments()

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "Module":
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
        return cls(relpath, path.read_text())

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):
            comments = [
                (number, line[line.index("#"):])
                for number, line in enumerate(self.source.splitlines(), start=1)
                if "#" in line
            ]
        for line, text in comments:
            ignore = _IGNORE.search(text)
            if ignore is not None:
                names = ignore.group(1)
                if names is None:
                    self.suppressions[line] = None
                else:
                    rules = frozenset(
                        name.strip() for name in names.split(",") if name.strip()
                    )
                    previous = self.suppressions.get(line)
                    if previous is not None:
                        self.suppressions[line] = rules | (previous or frozenset())
                    elif line not in self.suppressions:
                        self.suppressions[line] = rules
            guarded = _GUARDED_BY.search(text)
            if guarded is not None:
                self.guarded_by[line] = guarded.group(1)
            holds = _HOLDS.search(text)
            if holds is not None:
                self.holds[line] = holds.group(1)

    def suppressed(self, violation: Violation) -> bool:
        rules = self.suppressions.get(violation.line, frozenset())
        return rules is None or violation.rule in rules

    # -- AST helpers shared by rules ------------------------------------
    @staticmethod
    def qualname(node: ast.AST) -> str | None:
        """Dotted source name of a Name/Attribute chain, else None.

        ``self._store.load`` -> ``"self._store.load"``; anything with a
        non-name base (a call result, a subscript) keeps the readable
        tail: ``open(p).read`` -> ``"().read"``.
        """
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            base = Module.qualname(node.value)
            return f"{base or '()'}.{node.attr}"
        return None

    @staticmethod
    def parents(node: ast.AST) -> Iterator[ast.AST]:
        current = getattr(node, "parent", None)
        while current is not None:
            yield current
            current = getattr(current, "parent", None)

    @staticmethod
    def enclosing_function(
        node: ast.AST,
    ) -> "ast.FunctionDef | ast.AsyncFunctionDef | None":
        for parent in Module.parents(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return parent
        return None


class Rule:
    """Base class: subclass, set the class attributes, implement check.

    ``scope`` / ``exclude`` are fnmatch globs over repo-relative posix
    paths.  ``check`` yields :class:`Violation` instances; use
    :meth:`violation` so the rule name and module path are filled in
    consistently.
    """

    name: str = "unnamed"
    summary: str = ""
    scope: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        matched = any(_match(relpath, pattern) for pattern in self.scope)
        excluded = any(_match(relpath, pattern) for pattern in self.exclude)
        return matched and not excluded

    def check(self, module: Module) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(
        self, module: Module, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.name,
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _match(relpath: str, pattern: str) -> bool:
    """fnmatch where ``**`` crosses directory levels (recursive glob)."""
    if fnmatch(relpath, pattern):
        return True
    # fnmatch's ``*`` already crosses ``/``; normalize ``**/`` prefixes
    # so ``src/**/x.py`` also matches ``src/x.py``.
    if "**/" in pattern and fnmatch(relpath, pattern.replace("**/", "")):
        return True
    return False


#: name -> rule instance; populated by :func:`register` at import time.
_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type) -> type:
    """Class decorator: instantiate and add to the default registry."""
    rule = rule_class()
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_class


def default_rules() -> dict[str, Rule]:
    """The registered rule set (importing .rules populates it)."""
    from tools.analyze import rules  # noqa: F401  (import for side effect)

    return dict(_REGISTRY)


@dataclass
class Report:
    """Everything one analysis run produced."""

    root: str
    paths: list[str]
    files_scanned: int = 0
    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    parse_errors: list[str] = field(default_factory=list)
    rules: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def to_json(self) -> dict:
        return {
            "schema_version": 1,
            "tool": "repro-analyze",
            "root": self.root,
            "paths": self.paths,
            "files_scanned": self.files_scanned,
            "rules": [
                {"name": name, "violations": count}
                for name, count in sorted(self.rules.items())
            ],
            "violations": [item.to_json() for item in self.violations],
            "suppressed": self.suppressed,
            "parse_errors": self.parse_errors,
            "ok": self.ok,
        }


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            for item in sorted(path.rglob("*.py")):
                if not any(part.startswith(".") for part in item.parts):
                    yield item
        elif path.suffix == ".py":
            yield path


def analyze_paths(
    paths: Iterable[str | Path],
    *,
    root: str | Path = ".",
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> Report:
    """Run every applicable rule over every python file under ``paths``.

    ``select``/``ignore`` narrow the rule set by name; unknown names
    raise ``ValueError`` (a typo must not silently disable a gate).
    """
    rules = default_rules()
    for names in (select, ignore):
        unknown = set(names or ()) - set(rules)
        if unknown:
            raise ValueError(
                f"unknown rule(s) {sorted(unknown)}; "
                f"known: {sorted(rules)}"
            )
    if select is not None:
        rules = {name: rules[name] for name in select}
    if ignore is not None:
        rules = {
            name: rule for name, rule in rules.items() if name not in ignore
        }
    root = Path(root)
    report = Report(
        root=str(root), paths=[str(path) for path in paths],
        rules={name: 0 for name in rules},
    )
    for path in iter_python_files(Path(item) for item in paths):
        report.files_scanned += 1
        try:
            module = Module.from_path(path, root)
        except (SyntaxError, UnicodeDecodeError) as error:
            report.parse_errors.append(f"{path}: {error}")
            continue
        for rule in rules.values():
            if not rule.applies_to(module.relpath):
                continue
            for violation in rule.check(module):
                if module.suppressed(violation):
                    report.suppressed += 1
                else:
                    report.violations.append(violation)
                    report.rules[rule.name] += 1
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report


def analyze_source(
    source: str, relpath: str, rule_name: str
) -> list[Violation]:
    """Run one rule over one source string (the test harness's hook)."""
    rules = default_rules()
    rule = rules[rule_name]
    module = Module(relpath, source)
    if not rule.applies_to(relpath):
        return []
    return [
        violation
        for violation in rule.check(module)
        if not module.suppressed(violation)
    ]
