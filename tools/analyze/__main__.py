"""``python -m tools.analyze`` — the repro-analyze CLI entry point."""

import sys

from tools.analyze.cli import main

sys.exit(main())
