"""Test-time lock-order watchdog: a mini dynamic race detector.

The static lock-discipline rule checks that guarded fields are touched
under their lock; it cannot see *ordering* — thread A taking lock L1
then L2 while thread B takes L2 then L1 deadlocks only under the right
interleaving, which tests rarely hit.  The watchdog makes the hazard
visible on **any** interleaving: it wraps ``threading.Lock`` /
``threading.RLock`` so every acquisition records a happens-inside edge
from each lock currently held by the thread to the one being acquired,
keyed by the lock's *creation site* (``file:line``) so every
``TTLCache`` instance maps to one node.  A cycle in that graph is a
potential deadlock even if the run never hung.

Opt-in (it patches ``threading`` globally, so the tier-1 suite stays
untouched): run the serve/ingest suites with ``REPRO_LOCKORDER=1`` or
``pytest --lockorder`` — ``tests/conftest.py`` installs the watchdog
for the session and fails it if the final graph has a cycle.

Known limits, by design: edges between two locks created at the *same*
site are ignored (two sibling cache instances may legitimately nest
either way), and locks created before ``install()`` are invisible.
"""

from __future__ import annotations

import threading
import traceback


class LockOrderViolation(Exception):
    """The acquisition-order graph contains a cycle (deadlock hazard)."""


def _creation_site(depth: int = 3) -> str:
    """``file:line`` of the frame that called the lock factory."""
    stack = traceback.extract_stack(limit=depth + 2)
    # stack[-1] is here, stack[-2] the factory, stack[-3] the creator.
    frame = stack[0] if len(stack) < 3 else stack[-3]
    return f"{frame.filename}:{frame.lineno}"


class TrackedLock:
    """Delegating wrapper recording acquisition order per thread."""

    __slots__ = ("_inner", "site", "_watchdog")

    def __init__(self, inner, site: str, watchdog: "LockOrderWatchdog"):
        self._inner = inner
        self.site = site
        self._watchdog = watchdog

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watchdog._record_acquire(self.site)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._watchdog._record_release(self.site)

    def locked(self) -> bool:
        return self._inner.locked()

    def _at_fork_reinit(self) -> None:
        # threading.Event/Condition reinitialize their locks in forked
        # children (ProcessPoolExecutor workers); delegate or the child
        # dies with AttributeError.
        self._inner._at_fork_reinit()
        held = getattr(self._watchdog._held, "stack", None)
        if held:
            del held[:]

    def __getattr__(self, name):
        # Threading internals probe for protocol extras (_is_owned,
        # _release_save, _acquire_restore on RLock-backed Conditions);
        # hand them the real lock's implementation.  Those paths bypass
        # order tracking, which is the safe direction: missing edges,
        # never false ones.
        return getattr(self._inner, name)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self):
        return f"TrackedLock({self.site})"


class LockOrderWatchdog:
    """Records lock-acquisition order across threads; detects cycles."""

    def __init__(self):
        #: held-site -> set of sites acquired while holding it.
        self.edges: dict[str, set[str]] = {}
        self.acquisitions = 0
        self._held = threading.local()
        self._graph_lock = threading.Lock()  # a real lock, never tracked
        self._real_lock = None
        self._real_rlock = None

    # -- recording --------------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _record_acquire(self, site: str) -> None:
        stack = self._stack()
        with self._graph_lock:
            self.acquisitions += 1
            for held in stack:
                if held != site:  # same-site nesting: see module docstring
                    self.edges.setdefault(held, set()).add(site)
        stack.append(site)

    def _record_release(self, site: str) -> None:
        stack = self._stack()
        # Locks may release out of LIFO order; drop the newest match.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == site:
                del stack[index]
                return

    # -- lock factories ---------------------------------------------------
    def make_lock(self):
        return TrackedLock(self._real_lock(), _creation_site(), self)

    def make_rlock(self):
        return TrackedLock(self._real_rlock(), _creation_site(), self)

    # -- install / uninstall ----------------------------------------------
    def install(self) -> "LockOrderWatchdog":
        """Patch ``threading.Lock``/``RLock`` to produce tracked locks."""
        if self._real_lock is not None:
            return self
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        threading.Lock = self.make_lock  # type: ignore[assignment]
        threading.RLock = self.make_rlock  # type: ignore[assignment]
        return self

    def uninstall(self) -> None:
        if self._real_lock is None:
            return
        threading.Lock = self._real_lock  # type: ignore[assignment]
        threading.RLock = self._real_rlock  # type: ignore[assignment]
        self._real_lock = None
        self._real_rlock = None

    def __enter__(self) -> "LockOrderWatchdog":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- analysis ---------------------------------------------------------
    def cycle(self) -> list[str] | None:
        """One cycle in the order graph as a site list, or ``None``.

        Iterative DFS with the standard white/grey/black coloring; the
        returned list is the grey path from the first revisited node,
        closed with that node (``[a, b, a]`` for a 2-cycle).
        """
        with self._graph_lock:
            edges = {node: sorted(targets) for node, targets in self.edges.items()}
        colors: dict[str, int] = {}
        GREY, BLACK = 1, 2

        def visit(start: str) -> list[str] | None:
            path: list[str] = []
            stack: list[tuple[str, int]] = [(start, 0)]
            while stack:
                node, edge_index = stack.pop()
                if edge_index == 0:
                    colors[node] = GREY
                    path.append(node)
                targets = edges.get(node, [])
                advanced = False
                for index in range(edge_index, len(targets)):
                    target = targets[index]
                    color = colors.get(target)
                    if color == GREY:
                        return path[path.index(target):] + [target]
                    if color is None:
                        stack.append((node, index + 1))
                        stack.append((target, 0))
                        advanced = True
                        break
                if not advanced:
                    colors[node] = BLACK
                    path.pop()
            return None

        for node in sorted(edges):
            if colors.get(node) is None:
                found = visit(node)
                if found is not None:
                    return found
        return None

    def assert_no_cycles(self) -> None:
        """Raise :class:`LockOrderViolation` when the graph has a cycle."""
        found = self.cycle()
        if found is not None:
            chain = "\n  -> ".join(found)
            raise LockOrderViolation(
                "lock-acquisition order cycle (potential deadlock):\n"
                f"  -> {chain}\n"
                "Threads acquired these locks in conflicting orders during "
                "the run; fix the ordering or document why the cycle is "
                "unreachable."
            )

    def stats(self) -> dict:
        with self._graph_lock:
            return {
                "locks": len(
                    set(self.edges)
                    | {t for targets in self.edges.values() for t in targets}
                ),
                "edges": sum(len(targets) for targets in self.edges.values()),
                "acquisitions": self.acquisitions,
            }
