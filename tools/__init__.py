"""Repo tooling: benchmark gating (check_bench), docs rot checks
(check_docs), and the repro-analyze static-analysis pass (analyze/)."""
