"""CI obs-smoke: the observability layer, end to end, in one process.

Boots a tiny server, drives 50 concurrent requests through the real
client, then checks the claims docs/observability.md makes:

1. the ``metrics`` op's Prometheus text round-trips through
   :func:`repro.obs.parse_prometheus` (a strict, hand-rolled parser —
   malformed exposition fails loudly);
2. every metric family the server declared at construction shows up in
   the scrape (a registered-but-never-rendered family is how a
   dashboard goes silently blank);
3. request traces reached the ring and carry the serving-pipeline
   spans;
4. the slow-query log (armed at threshold 0 so every request is
   "slow") recorded entries to its JSONL file with trace + explain
   evidence.

The slow-query log lands in ``obs_smoke_slowlog.jsonl`` either way;
the CI job uploads it as an artifact when this script fails.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

SLOWLOG_PATH = Path("obs_smoke_slowlog.jsonl")
REQUESTS = 50


def main() -> int:
    from repro.api import SummaryBuilder
    from repro.data.domain import Domain, integer_domain
    from repro.data.relation import Relation
    from repro.data.schema import Schema
    from repro.obs import parse_prometheus
    from repro.serve import (
        ServeClient,
        ServeConfig,
        ServerThread,
        SummaryServer,
        run_load,
    )

    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 4)]
    )
    rng = np.random.default_rng(11)
    relation = Relation(
        schema,
        [rng.choice(3, size=400, p=[0.5, 0.3, 0.2]), rng.integers(0, 4, 400)],
    )
    summary = (
        SummaryBuilder(relation)
        .pairs(("state", "hour"))
        .per_pair_budget(4)
        .iterations(40)
        .name("obs-smoke")
        .fit()
    )
    workload = [
        "SELECT COUNT(*) FROM R WHERE state = 'CA'",
        "SELECT COUNT(*) FROM R WHERE hour BETWEEN 1 AND 2",
        "SELECT COUNT(*) FROM R GROUP BY state",
        "SELECT SUM(hour) FROM R WHERE state = 'NY'",
        "SELECT AVG(hour) FROM R WHERE state = 'WA'",
    ]

    SLOWLOG_PATH.unlink(missing_ok=True)
    server = SummaryServer(
        summary,
        config=ServeConfig(
            window_ms=2.0,
            slow_query_ms=0.0,  # every request records: exercises the log
            slow_query_log=str(SLOWLOG_PATH),
        ),
    )
    declared = set(server.metrics.names())
    with ServerThread(server) as running:
        report = run_load(
            running.host,
            running.port,
            workload,
            clients=5,
            requests_per_client=REQUESTS // 5,
        )
        with ServeClient(port=running.port) as client:
            view = client.server_metrics(include_traces=True)

    failures: list[str] = []
    if report.errors:
        failures.append(f"{report.errors} request errors during load")
    if report.requests != REQUESTS:
        failures.append(f"expected {REQUESTS} requests, got {report.requests}")

    # 1. the scrape parses (strict round-trip)
    parsed = parse_prometheus(view["prometheus"])
    families = set(parsed["types"])

    # 2. every declared family made it into the exposition
    missing = sorted(declared - families)
    if missing:
        failures.append(f"declared metrics absent from scrape: {missing}")
    served = [
        sample
        for (name, _), sample in parsed["samples"].items()
        if name == "repro_requests_total"
    ]
    if sum(served) < REQUESTS:
        failures.append(
            f"repro_requests_total {sum(served)} < {REQUESTS} driven"
        )

    # 3. traces reached the ring with pipeline spans
    traces = view.get("traces", [])
    if not traces:
        failures.append("trace ring is empty after 50 requests")
    else:
        span_names = {s["name"] for t in traces for s in t["spans"]}
        for wanted in ("parse", "canonicalize", "route", "cache_lookup"):
            if wanted not in span_names:
                failures.append(f"no {wanted!r} span in any recorded trace")

    # 4. the slow-query log wrote JSONL entries with evidence attached
    if not SLOWLOG_PATH.exists():
        failures.append(f"slow-query log {SLOWLOG_PATH} was not written")
    else:
        entries = [
            json.loads(line)
            for line in SLOWLOG_PATH.read_text().splitlines()
            if line.strip()
        ]
        if not entries:
            failures.append("slow-query log is empty at threshold 0")
        elif not any(e.get("trace") for e in entries):
            failures.append("no slow-query entry embeds its trace")

    print(
        f"obs-smoke: {report.requests} requests, {len(families)} metric "
        f"families scraped, {len(traces)} traces ringed, "
        f"slow-log entries: "
        f"{sum(1 for _ in SLOWLOG_PATH.open()) if SLOWLOG_PATH.exists() else 0}"
    )
    if failures:
        for failure in failures:
            print(f"obs-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print("obs-smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
