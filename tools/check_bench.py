"""Perf-regression gate over the ``BENCH_*.json`` reports.

Three subcommands — the same entry points CI and local developers use
(``make bench-all`` / ``make check-bench``):

``run``
    Execute a pytest benchmark suite ``--repeat`` times (default 3),
    redirecting each repeat's ``BENCH_*.json`` into its own
    ``<out-dir>/runN/`` directory via ``REPRO_BENCH_DIR``.  Exits zero
    when a **majority** of repeats pass — wall-clock comparisons on
    noisy shared runners get median-of-3 robustness instead of
    ``continue-on-error``.

``compare``
    Gate fresh reports against the checked-in baselines in
    ``benchmarks/baselines/``.  Metrics are taken as the **median
    across run directories**, then checked with per-class tolerance
    bands:

    * *higher-is-better* metrics (name contains ``speedup`` or
      ``hit_rate``) may regress at most 20% below baseline;
    * *lower-is-better* metrics (name contains ``error``/``err`` or
      ends in ``_ratio``) may **not grow** above baseline;
    * *throughput* metrics (name contains ``qps``) may fall at most
      50% below baseline — absolute, so the band is wide enough for
      runner variance while a protocol-level regression still trips;
    * *latency* metrics (name contains ``_ms``) may grow at most 50%
      above baseline, same reasoning;
    * everything else (timings in seconds, counts, configuration
      echoes) is informational.

    Each run's own ``passed`` flag (the suite's internal thresholds)
    must also hold for a majority of runs, and the report scale must
    match the baseline scale.

``update``
    Rewrite the baselines from fresh run medians, with headroom baked
    in (speedup-class values stored at 85% of measured, error-class at
    125%), so day-to-day machine noise does not trip the gate while a
    real regression still does.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

#: Fraction a higher-is-better metric may fall below its baseline.
SPEEDUP_BAND = 0.20
#: Fraction an absolute-throughput (``qps``) metric may fall below its
#: baseline, and an absolute-latency (``_ms``) metric may grow above it.
#: Wider than SPEEDUP_BAND because absolute numbers carry runner noise
#: that same-box ratios cancel out.
QPS_BAND = 0.50
LATENCY_BAND = 0.50
#: Headroom factors ``update`` bakes into the stored baselines.
SPEEDUP_HEADROOM = 0.85
ERROR_HEADROOM = 1.25
QPS_HEADROOM = 0.70
LATENCY_HEADROOM = 1.30

# Ratio metrics gate tightly: speedups and hit rates compare two
# measurements on the same box, error metrics are data properties.
# Absolute throughput (qps) and latency (*_ms) gate with the wide
# bands above; *_s timings and counts stay informational.
_HIGHER_MARKERS = ("speedup", "hit_rate")
_LOWER_MARKERS = ("error", "err")


def classify(metric: str) -> str:
    """``higher`` / ``lower`` / ``qps`` / ``latency`` / ``info`` gating
    class of one metric."""
    name = metric.lower()
    if any(marker in name for marker in _HIGHER_MARKERS):
        return "higher"
    if any(marker in name for marker in _LOWER_MARKERS):
        return "lower"
    if name.endswith("_ratio"):
        return "lower"
    if "qps" in name:
        return "qps"
    if "_ms" in name:
        return "latency"
    return "info"


def _load_report(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise SystemExit(f"check_bench: cannot read {path}: {error}") from error


def _run_dirs(args) -> list[Path]:
    if args.runs:
        return [Path(item) for item in args.runs]
    root = Path(args.runs_root)
    dirs = sorted(path for path in root.glob("run*") if path.is_dir())
    if dirs:
        return dirs
    return [root]


def _median_reports(name: str, run_dirs: list[Path]) -> tuple[dict, list[dict]]:
    """Median metrics (and the raw reports) of one suite across runs."""
    reports = []
    for run_dir in run_dirs:
        path = run_dir / f"BENCH_{name}.json"
        if path.exists():
            reports.append(_load_report(path))
    if not reports:
        return {}, []
    # Union of keys across runs: a run that died mid-suite leaves a
    # partial report, and the surviving runs must still supply every
    # metric's median (that is the point of running more than once).
    keys: set = set()
    for report in reports:
        keys.update(report.get("metrics", {}))
    merged: dict = {}
    for key in keys:
        values = [
            report["metrics"][key]
            for report in reports
            if key in report.get("metrics", {})
            and isinstance(report["metrics"][key], (int, float))
        ]
        if values:
            merged[key] = statistics.median(values)
    return merged, reports


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------

def cmd_run(args) -> int:
    if args.repeat < 1:
        raise SystemExit("check_bench run: --repeat must be >= 1")
    out_dir = Path(args.out_dir)
    passes = 0
    for index in range(1, args.repeat + 1):
        run_dir = out_dir / f"run{index}"
        run_dir.mkdir(parents=True, exist_ok=True)
        # Drop reports from a previous invocation: a suite that crashes
        # before writing must show up as "no report produced", not be
        # silently gated against last time's numbers.
        for stale in run_dir.glob("BENCH_*.json"):
            stale.unlink()
        env = dict(os.environ, REPRO_BENCH_DIR=str(run_dir))
        command = [sys.executable, "-m", "pytest", *args.pytest_args]
        print(
            f"check_bench: run {index}/{args.repeat}: {' '.join(command)} "
            f"(reports -> {run_dir})",
            flush=True,
        )
        result = subprocess.run(command, env=env)
        if result.returncode == 0:
            passes += 1
        else:
            print(
                f"check_bench: run {index} failed (exit {result.returncode})",
                flush=True,
            )
    majority = passes * 2 > args.repeat
    print(
        f"check_bench: {passes}/{args.repeat} runs passed "
        f"({'majority reached' if majority else 'majority NOT reached'})"
    )
    return 0 if majority else 1


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------

def _check_suite(
    name: str, baseline: dict, run_dirs: list[Path]
) -> list[str]:
    """Violations of one suite's baselines; empty list = green."""
    current, reports = _median_reports(name, run_dirs)
    if not reports:
        return [
            f"{name}: no BENCH_{name}.json produced in "
            f"{', '.join(str(d) for d in run_dirs)}"
        ]
    violations = []
    scale = baseline.get("scale")
    mismatched = {
        report.get("scale") for report in reports
    } - {scale}
    if scale is not None and mismatched:
        violations.append(
            f"{name}: reports ran at scale {sorted(mismatched)}, "
            f"baseline is {scale!r} — not comparable"
        )
    own_passes = sum(1 for report in reports if report.get("passed"))
    if own_passes * 2 <= len(reports):
        violations.append(
            f"{name}: internal thresholds failed in "
            f"{len(reports) - own_passes}/{len(reports)} runs"
        )
    for metric, bound in sorted(baseline.get("metrics", {}).items()):
        if not isinstance(bound, (int, float)):
            continue
        kind = classify(metric)
        if kind == "info":
            continue
        actual = current.get(metric)
        if actual is None:
            violations.append(f"{name}: metric {metric!r} missing from reports")
            continue
        if kind in ("higher", "qps"):
            band = SPEEDUP_BAND if kind == "higher" else QPS_BAND
            floor = bound * (1.0 - band)
            if actual < floor:
                violations.append(
                    f"{name}: {metric} regressed to {actual:g} "
                    f"(baseline {bound:g}, floor {floor:g})"
                )
        elif kind == "latency":
            ceiling = bound * (1.0 + LATENCY_BAND)
            if actual > ceiling:
                violations.append(
                    f"{name}: {metric} grew to {actual:g} "
                    f"(baseline {bound:g}, ceiling {ceiling:g})"
                )
        else:
            if actual > bound:
                violations.append(
                    f"{name}: {metric} grew to {actual:g} "
                    f"(baseline ceiling {bound:g})"
                )
    return violations


def cmd_compare(args) -> int:
    baseline_dir = Path(args.baseline_dir)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if args.names:
        wanted = set(args.names)
        baselines = [
            path
            for path in baselines
            if path.stem.removeprefix("BENCH_") in wanted
        ]
        missing = wanted - {
            path.stem.removeprefix("BENCH_") for path in baselines
        }
        if missing:
            print(
                f"check_bench: no baseline for {sorted(missing)} in "
                f"{baseline_dir}",
                file=sys.stderr,
            )
            return 1
    if not baselines:
        print(
            f"check_bench: no baselines found in {baseline_dir}",
            file=sys.stderr,
        )
        return 1
    run_dirs = _run_dirs(args)
    all_violations = []
    for path in baselines:
        name = path.stem.removeprefix("BENCH_")
        baseline = _load_report(path)
        violations = _check_suite(name, baseline, run_dirs)
        status = "OK" if not violations else "FAIL"
        print(f"check_bench: {name}: {status}")
        all_violations.extend(violations)
    if all_violations:
        print("\ncheck_bench: perf regression gate FAILED:", file=sys.stderr)
        for violation in all_violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print(f"check_bench: all {len(baselines)} suites within tolerance")
    return 0


# ----------------------------------------------------------------------
# update
# ----------------------------------------------------------------------

def cmd_update(args) -> int:
    baseline_dir = Path(args.baseline_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    run_dirs = _run_dirs(args)
    names = set()
    for run_dir in run_dirs:
        for path in run_dir.glob("BENCH_*.json"):
            names.add(path.stem.removeprefix("BENCH_"))
    if args.names:
        names &= set(args.names)
    if not names:
        print("check_bench: no reports found to update from", file=sys.stderr)
        return 1
    for name in sorted(names):
        current, reports = _median_reports(name, run_dirs)
        padded = {}
        for metric, value in sorted(current.items()):
            kind = classify(metric)
            if kind == "higher":
                padded[metric] = round(value * SPEEDUP_HEADROOM, 4)
            elif kind == "lower":
                padded[metric] = round(value * ERROR_HEADROOM, 5)
            elif kind == "qps":
                padded[metric] = round(value * QPS_HEADROOM, 4)
            elif kind == "latency":
                padded[metric] = round(value * LATENCY_HEADROOM, 5)
            else:
                padded[metric] = value
        document = {
            "format_version": reports[0].get("format_version", 1),
            "name": name,
            "scale": reports[0].get("scale"),
            "source": (
                "tools/check_bench.py update — medians with headroom "
                f"(higher-is-better x{SPEEDUP_HEADROOM}, "
                f"lower-is-better x{ERROR_HEADROOM})"
            ),
            "metrics": padded,
        }
        path = baseline_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"check_bench: wrote {path}")
    return 0


# ----------------------------------------------------------------------

def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="check_bench",
        description="run benchmark suites median-of-N and gate BENCH_*.json "
        "reports against checked-in baselines",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run a pytest suite N times, pass on majority"
    )
    run.add_argument("--repeat", type=int, default=3)
    run.add_argument(
        "--out-dir",
        default="benchmarks/results/perf",
        help="reports of run N land in <out-dir>/runN/",
    )
    run.add_argument(
        "pytest_args",
        nargs=argparse.REMAINDER,
        help="arguments after -- go to pytest verbatim",
    )

    def add_compare_args(command):
        command.add_argument(
            "--baseline-dir", default=str(DEFAULT_BASELINE_DIR)
        )
        command.add_argument(
            "--runs",
            nargs="+",
            help="explicit report directories (default: --runs-root run*/)",
        )
        command.add_argument(
            "--runs-root",
            default="benchmarks/results/perf",
            help="directory whose run*/ subdirectories hold the reports "
            "(falls back to the directory itself)",
        )
        command.add_argument(
            "names", nargs="*", help="suite names to gate (default: all)"
        )

    compare = commands.add_parser(
        "compare", help="gate fresh reports against the baselines"
    )
    add_compare_args(compare)

    update = commands.add_parser(
        "update", help="rewrite baselines from fresh run medians + headroom"
    )
    add_compare_args(update)
    return parser


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.command == "run":
        # argparse.REMAINDER keeps a leading "--" separator; drop it.
        if args.pytest_args and args.pytest_args[0] == "--":
            args.pytest_args = args.pytest_args[1:]
        if not args.pytest_args:
            raise SystemExit("check_bench run: give pytest arguments after --")
        return cmd_run(args)
    if args.command == "compare":
        return cmd_compare(args)
    return cmd_update(args)


if __name__ == "__main__":
    raise SystemExit(main())
