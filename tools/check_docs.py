"""Documentation checker: code blocks compile, relative links resolve.

Run from the repository root (``make docs-check``)::

    python tools/check_docs.py [files...]

With no arguments it checks ``README.md`` and every ``docs/*.md``.
Two classes of rot are caught:

* every ```` ```python ```` fenced block must byte-compile — snippets
  that drift from the API fail here before a reader pastes them;
* every relative markdown link ``[text](path)`` must point at a file
  or directory that exists (``http(s)``/``mailto`` targets and pure
  ``#anchors`` are skipped; ``path#fragment`` checks only the path).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

FENCE = re.compile(r"^```(\w*)\s*$")
# [text](target) — skipping images is unnecessary; their paths should
# resolve too.  Nested brackets inside the text are fine because the
# pattern only cares about the (...) target.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def python_blocks(text: str):
    """Yield ``(start_line, source)`` for every ```python fence.

    An unterminated fence yields ``(start_line, None)`` so callers can
    flag it instead of silently skipping the (unchecked) code.
    """
    lines = text.splitlines()
    block: list[str] | None = None
    start = 0
    for number, line in enumerate(lines, 1):
        match = FENCE.match(line.strip())
        if block is None:
            if match and match.group(1).lower() == "python":
                block = []
                start = number + 1
        elif match and not match.group(1):
            yield start, "\n".join(block)
            block = None
        elif block is not None:
            block.append(line)
    if block is not None:
        yield start, None


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text()
    for start, source in python_blocks(text):
        if source is None:
            errors.append(
                f"{path}:{start - 1}: unterminated ```python fence"
            )
            continue
        try:
            compile(source, f"{path}:{start}", "exec")
        except SyntaxError as error:
            errors.append(
                f"{path}:{start + (error.lineno or 1) - 1}: code block "
                f"does not compile: {error.msg}"
            )
    for number, line in enumerate(text.splitlines(), 1):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                errors.append(
                    f"{path}:{number}: broken link -> {target}"
                )
    return errors


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [Path("README.md"), *sorted(Path("docs").glob("*.md"))]
    missing = [str(path) for path in files if not path.exists()]
    if missing:
        print(f"error: no such file(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    errors = []
    blocks = 0
    for path in files:
        blocks += sum(
            1 for _, source in python_blocks(path.read_text())
            if source is not None
        )
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"docs check FAILED: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(
        f"docs check OK: {len(files)} file(s), {blocks} python block(s), "
        "all relative links resolve"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
